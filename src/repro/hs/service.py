"""The hidden service.

Couples an identity key (→ onion address) with the host machine behind it
and a publication lifecycle: while online, the service uploads fresh
descriptors at every 24-hour period boundary.  The host half (ports,
content, botnet behaviour) is supplied by the population generator; this
class owns only the Tor-protocol side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.crypto.descriptor_id import time_period_boundaries
from repro.crypto.keys import KeyPair
from repro.crypto.onion import OnionAddress, onion_address_from_key, permanent_id_from_onion
from repro.hs.descriptor import HSDescriptor, make_descriptors
from repro.net.endpoint import SimpleHost
from repro.sim.clock import Timestamp
from repro.sim.rng import derive_rng

if TYPE_CHECKING:  # circular: tornet imports this module
    from repro.client.guards import GuardSet
    from repro.tornet import TorNetwork


@dataclass
class HiddenService:
    """A hidden service: key, host, and publication window.

    Attributes:
        keypair: identity key; the onion address derives from it.
        host: the machine answering rendezvous connections (ports/content).
        online_from / online_until: when the *service* publishes descriptors.
            A service can go offline (stop publishing) while its host record
            persists — this models the churn between the paper's harvest
            (4 Feb), port scans (14–21 Feb) and crawl (~April).
        operator_ip: the machine's real address — what the location-privacy
            guarantees hide and the §II.B deanonymisation attack recovers.
    """

    keypair: KeyPair
    host: SimpleHost = field(default_factory=SimpleHost)
    online_from: Timestamp = 0
    online_until: Optional[Timestamp] = None
    introduction_points: Tuple[str, ...] = ()
    operator_ip: int = 0
    publish_count: int = field(default=0, repr=False)
    _guards: Optional["GuardSet"] = field(default=None, repr=False)

    @property
    def onion(self) -> OnionAddress:
        """The service's onion address."""
        return onion_address_from_key(self.keypair.public_der)

    @property
    def permanent_id(self) -> bytes:
        """First 10 bytes of the identity digest (ring-time offset source)."""
        return permanent_id_from_onion(self.onion)

    def is_online(self, now: Timestamp) -> bool:
        """Whether the service is publishing descriptors at ``now``."""
        if now < self.online_from:
            return False
        if self.online_until is not None and now >= self.online_until:
            return False
        return True

    def current_descriptors(self, now: Timestamp) -> List[HSDescriptor]:
        """Both replica descriptors for the period containing ``now``."""
        return make_descriptors(self.keypair, now, self.introduction_points)

    def next_publish_after(self, now: Timestamp) -> Timestamp:
        """The next period boundary at which the service republishes."""
        _, period_end = time_period_boundaries(now, self.permanent_id)
        return period_end

    def ensure_guards(
        self, network: "TorNetwork", rng: Optional[random.Random] = None
    ) -> "GuardSet":
        """The service's own entry guards (services build circuits too).

        Lazily created and refreshed against the current consensus; the
        first hop of every service-side circuit — publishes, rendezvous —
        comes from this set, which is what both deanonymisation attacks
        ([8] for operators, §VI for clients) ultimately race against.
        """
        from repro.client.guards import GuardSet

        if self._guards is None:
            seed_rng = rng if rng is not None else derive_rng(
                int.from_bytes(self.keypair.fingerprint[:8], "big"),
                "hs",
                "service",
                "guards",
            )
            self._guards = GuardSet(seed_rng)
        self._guards.refresh(network.consensus, network.clock.now)
        return self._guards
