"""Deterministic shard-map execution.

``pmap(fn, items)`` is the one sanctioned way to fan work out across
processes.  Work is partitioned into *stable shards* — contiguous,
balanced slices whose boundaries depend only on the item count and shard
count — and every item owns an RNG stream derived from the experiment
seed, the caller's path, and the item's **global index**.  Because neither
the stream derivation nor the merge order ever depends on the worker
count, scheduling, or completion order, the output is byte-identical at
``workers=1`` and ``workers=64``.

Three execution modes, chosen automatically:

- ``workers=1`` (the default, also the ``REPRO_WORKERS`` fallback): plain
  in-process loop, zero overhead.
- ``workers>1`` with a picklable ``fn``: shards run on a
  :class:`concurrent.futures.ProcessPoolExecutor`; results are merged in
  shard order, not completion order.
- ``workers>1`` with an *unpicklable* ``fn`` (a closure over live
  simulator state, say): the shards run serially in-process, in shard
  order.  This degrades throughput, never correctness — which is exactly
  the contract callers rely on: stages that must observe shared mutable
  state (e.g. a transport with one circuit-noise stream) deliberately
  pass closures so they stay in-process and keep their draw order.

This module is the only place allowed to touch ``concurrent.futures`` /
``multiprocessing`` directly; rule REP007 of ``repro lint`` rejects raw
use anywhere else.

Two robustness hooks ride on the shard structure (both used by
``repro.supervise``, neither imported from it):

- **Poison-shard quarantine.**  With a :class:`ShardQuarantine`, a shard
  whose items raise is retried, then re-run item-by-item in the parent;
  only the individually-failing items are quarantined (replaced by the
  :data:`QUARANTINED` sentinel and reported), so the quarantined set is a
  function of the *items*, never of shard boundaries or worker count.
- **Crash points.**  An optional ``crash_point`` callable is hit once per
  shard, in shard order, in the parent process — the supervision plane's
  deterministic process-death injector threads through here.
"""

from __future__ import annotations

import os
import pickle
import random
from concurrent import futures
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ParallelError
from repro.obs.scope import Observer
from repro.sim.rng import derive_rng

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Shards per worker: small enough to amortise submission overhead, large
#: enough that one slow shard cannot idle the rest of the pool.
SHARDS_PER_WORKER = 4

#: Set in pool workers (via initializer) so nested ``pmap`` calls inside a
#: worker degrade to in-process execution instead of forking grandchildren.
_IN_WORKER = False

#: The crash-point label ``pmap`` hits once per shard (parent process,
#: shard order).  Spelled here — not imported from ``repro.supervise`` —
#: so the dependency points strictly upward.
PMAP_SHARD_POINT = "pmap:shard"


class _QuarantinedSentinel:
    """The placeholder a quarantined item leaves in the result list."""

    def __repr__(self) -> str:
        return "QUARANTINED"


#: Singleton marking a quarantined item's slot; compare with ``is``.
#: Quarantine isolation always runs in the parent process, so identity
#: checks never cross a pickle boundary.
QUARANTINED: Any = _QuarantinedSentinel()


class ShardQuarantine:
    """Isolation record for items that fail repeatedly under ``pmap``.

    A failing shard is retried up to ``max_attempts`` times (the whole
    shard — cheap, and rescues genuinely transient faults), then re-run
    item-by-item in the parent: items that still raise are *quarantined* —
    their slot in the result list becomes :data:`QUARANTINED` and a report
    (seed-path, global index, error) is recorded here — instead of
    aborting the run.  Because isolation is per item, the quarantined set
    is identical at every worker count.

    One instance may span several ``pmap`` calls and several supervised
    restarts; reports are deduplicated on (seed-path, index) so a
    restarted stage does not double-report its poison.
    """

    def __init__(self, max_attempts: int = 2) -> None:
        if max_attempts < 1:
            raise ParallelError(
                f"quarantine max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self._seen: set = set()
        self._reports: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._reports)

    def record(
        self, seed_path: Sequence[str], index: int, error: Exception
    ) -> bool:
        """Record one quarantined item; False if already recorded."""
        path = "/".join(seed_path)
        key = (path, index)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._reports.append(
            {
                "path": path,
                "index": index,
                "error": f"{type(error).__name__}: {error}",
            }
        )
        return True

    def reports(self) -> List[Dict[str, Any]]:
        """Quarantined-item reports, in quarantine order."""
        return list(self._reports)

    def indices(self, seed_path: Sequence[str] = ()) -> List[int]:
        """Global indices quarantined under ``seed_path``."""
        path = "/".join(str(element) for element in seed_path)
        return [
            report["index"]
            for report in self._reports
            if report["path"] == path
        ]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit argument, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ParallelError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
    if workers < 1:
        raise ParallelError(f"worker count must be >= 1, got {workers}")
    return workers


def shard_bounds(item_count: int, shard_count: int) -> List[Tuple[int, int]]:
    """Balanced, contiguous ``[start, stop)`` bounds partitioning the items.

    Every index in ``range(item_count)`` lands in exactly one shard; shard
    sizes differ by at most one.  The partition is a pure function of
    ``(item_count, shard_count)`` — nothing about workers or timing.
    """
    if item_count < 0:
        raise ParallelError(f"item count must be >= 0, got {item_count}")
    if shard_count < 1:
        raise ParallelError(f"shard count must be >= 1, got {shard_count}")
    if item_count == 0:
        return []
    shard_count = min(shard_count, item_count)
    per_shard = item_count // shard_count
    extra = item_count % shard_count
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(shard_count):
        size = per_shard + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def item_rng(seed: int, seed_path: Sequence[str], index: int) -> random.Random:
    """The RNG stream owned by item ``index`` under ``(seed, seed_path)``.

    A function of the seed, the path, and the item's global index only —
    re-sharding, worker count, and completion order cannot perturb it.
    """
    return derive_rng(seed, *seed_path, "item", str(index))


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _run_shard(
    fn: Callable,
    shard_items: List[T],
    start: int,
    seed: Optional[int],
    seed_path: Tuple[str, ...],
    observed: bool = False,
) -> "List[R] | Tuple[List[R], Observer]":
    """Run one shard; module-level so the process pool can pickle it.

    With ``observed=True`` a fresh shard :class:`Observer` is created here
    (inside the pool worker, when pooled) and passed to ``fn`` as its last
    argument; the shard's results and observer travel back together so the
    caller can absorb observers in shard order.
    """
    if not observed:
        if seed is None:
            return [fn(item) for item in shard_items]
        return [
            fn(item, item_rng(seed, seed_path, start + offset))
            for offset, item in enumerate(shard_items)
        ]
    shard_observer = Observer(name=f"shard@{start}")
    if seed is None:
        results = [fn(item, shard_observer) for item in shard_items]
    else:
        results = [
            fn(item, item_rng(seed, seed_path, start + offset), shard_observer)
            for offset, item in enumerate(shard_items)
        ]
    return results, shard_observer


def _is_picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except (pickle.PicklingError, TypeError, AttributeError):
        return False
    return True


def _run_shard_quarantined(
    fn: Callable,
    shard_items: List[T],
    start: int,
    seed: Optional[int],
    seed_path: Tuple[str, ...],
    observed: bool,
    quarantine: ShardQuarantine,
) -> "List[R] | Tuple[List[R], Observer]":
    """Run one shard under quarantine, in the parent process.

    Whole-shard attempts first (a transient fault heals here); if the
    shard keeps failing, fall back to per-item isolation so only the
    genuinely poisonous items are quarantined.  Metrics from failed
    whole-shard attempts are discarded with their observer, so the merged
    snapshot stays worker-count-invariant: every surviving item records
    exactly once.
    """
    for _ in range(quarantine.max_attempts):
        try:
            return _run_shard(
                fn, shard_items, start, seed, seed_path, observed=observed
            )
        except Exception:
            continue
    shard_observer = Observer(name=f"shard@{start}") if observed else None
    results: List[R] = []
    for offset, item in enumerate(shard_items):
        index = start + offset
        args: List[Any] = [item]
        if seed is not None:
            args.append(item_rng(seed, seed_path, index))
        if shard_observer is not None:
            args.append(shard_observer)
        try:
            results.append(fn(*args))
        except Exception as exc:
            quarantine.record(seed_path, index, exc)
            if shard_observer is not None:
                shard_observer.count("pmap_items_quarantined_total")
            results.append(QUARANTINED)
    if shard_observer is not None:
        return results, shard_observer
    return results


def _merge_shard_result(
    shard_result: "List[R] | Tuple[List[R], Observer]",
    merged: List[R],
    observer: Optional[Observer],
) -> None:
    if observer is None:
        merged.extend(shard_result)
    else:
        results, shard_observer = shard_result
        merged.extend(results)
        observer.absorb(shard_observer)


def _run_serial(
    fn: Callable,
    item_list: List[T],
    bounds: List[Tuple[int, int]],
    seed: Optional[int],
    seed_path: Tuple[str, ...],
    observer: Optional[Observer] = None,
    quarantine: Optional[ShardQuarantine] = None,
    crash_point: Optional[Callable[[str], None]] = None,
) -> List[R]:
    merged: List[R] = []
    for start, stop in bounds:
        if crash_point is not None:
            crash_point(PMAP_SHARD_POINT)
        if quarantine is not None:
            shard_result = _run_shard_quarantined(
                fn,
                item_list[start:stop],
                start,
                seed,
                seed_path,
                observer is not None,
                quarantine,
            )
        else:
            shard_result = _run_shard(
                fn,
                item_list[start:stop],
                start,
                seed,
                seed_path,
                observed=observer is not None,
            )
        _merge_shard_result(shard_result, merged, observer)
    return merged


def pmap(
    fn: Callable,
    items: Sequence[T],
    *,
    seed: Optional[int] = None,
    seed_path: Sequence[str] = (),
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    observer: Optional[Observer] = None,
    quarantine: Optional[ShardQuarantine] = None,
    crash_point: Optional[Callable[[str], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` deterministically, optionally in parallel.

    Without ``seed``, calls ``fn(item)``; with a ``seed``, calls
    ``fn(item, rng)`` where ``rng`` is :func:`item_rng` for the item's
    global index — so every item's stream is independent of how the work
    is sharded or scheduled.  Results always come back in item order.

    With an enabled ``observer``, ``fn`` additionally receives a per-shard
    :class:`~repro.obs.scope.Observer` as its last argument; shard
    observers are absorbed back into ``observer`` in shard order, so as
    long as ``fn`` records only additive metrics (counters, histograms)
    and events, the merged snapshot is byte-identical at any worker count.

    With a ``quarantine``, an item whose shard keeps failing is isolated
    per :class:`ShardQuarantine` — its result slot becomes
    :data:`QUARANTINED` instead of the exception aborting the run.  A
    ``crash_point`` callable is hit once per shard in shard order (parent
    process); whatever it raises propagates untouched.

    A broken process pool (a worker died) never propagates: the affected
    shard re-runs serially in the parent — per-item work is independent
    by contract, so the rerun is equivalent — counted once per ``pmap``
    call as ``pmap_pool_broken_total``.

    ``fn`` must be independent across items (no item may read another's
    output).  A ``fn`` that needs shared mutable in-process state should
    be a closure: closures do not pickle, which routes them through the
    in-process serial path regardless of ``workers``.
    """
    item_list = list(items)
    worker_count = resolve_workers(workers)
    if not item_list:
        return []
    path = tuple(str(element) for element in seed_path)
    shard_count = shards if shards is not None else worker_count * SHARDS_PER_WORKER
    bounds = shard_bounds(len(item_list), shard_count)
    if observer is not None and not observer.enabled:
        observer = None
    if worker_count == 1 or _IN_WORKER or len(bounds) == 1 or not _is_picklable(fn):
        return _run_serial(
            fn, item_list, bounds, seed, path, observer, quarantine, crash_point
        )

    def rescue_shard(start: int, stop: int):
        """Re-run one shard in the parent (pool broke or results won't pickle)."""
        if quarantine is not None:
            return _run_shard_quarantined(
                fn,
                item_list[start:stop],
                start,
                seed,
                path,
                observer is not None,
                quarantine,
            )
        return _run_shard(
            fn,
            item_list[start:stop],
            start,
            seed,
            path,
            observed=observer is not None,
        )

    with futures.ProcessPoolExecutor(
        max_workers=min(worker_count, len(bounds)), initializer=_mark_worker
    ) as pool:
        try:
            pending = [
                pool.submit(
                    _run_shard,
                    fn,
                    item_list[start:stop],
                    start,
                    seed,
                    path,
                    observer is not None,
                )
                for start, stop in bounds
            ]
        except futures.BrokenExecutor:
            # The pool died before any work was merged (no crash point has
            # fired yet, so the serial path replays them all, once).
            if observer is not None:
                observer.count("pmap_pool_broken_total")
            return _run_serial(
                fn, item_list, bounds, seed, path, observer, quarantine, crash_point
            )
        merged: List[R] = []
        pool_broken = False
        # Merge in shard-submission order; completion order is irrelevant.
        # The crash point fires here — parent process, shard order — so
        # injected deaths are worker-count-invariant.
        for (start, stop), future in zip(bounds, pending):
            if crash_point is not None:
                crash_point(PMAP_SHARD_POINT)
            try:
                shard_result = future.result()
            except futures.BrokenExecutor:
                # A worker died (os._exit, OOM kill).  Rescue just this
                # shard in the parent; later shards rescue themselves the
                # same way while the pool stays broken.
                if not pool_broken and observer is not None:
                    observer.count("pmap_pool_broken_total")
                pool_broken = True
                shard_result = rescue_shard(start, stop)
            except (pickle.PicklingError, TypeError, AttributeError):
                # Unpicklable items/results — or ``fn`` genuinely raising
                # one of these types, which the parent rerun re-raises (or
                # quarantines) exactly as the serial path would.
                shard_result = rescue_shard(start, stop)
            except Exception:
                if quarantine is None:
                    raise
                shard_result = rescue_shard(start, stop)
            _merge_shard_result(shard_result, merged, observer)
        return merged
