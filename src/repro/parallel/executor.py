"""Deterministic shard-map execution.

``pmap(fn, items)`` is the one sanctioned way to fan work out across
processes.  Work is partitioned into *stable shards* — contiguous,
balanced slices whose boundaries depend only on the item count and shard
count — and every item owns an RNG stream derived from the experiment
seed, the caller's path, and the item's **global index**.  Because neither
the stream derivation nor the merge order ever depends on the worker
count, scheduling, or completion order, the output is byte-identical at
``workers=1`` and ``workers=64``.

Three execution modes, chosen automatically:

- ``workers=1`` (the default, also the ``REPRO_WORKERS`` fallback): plain
  in-process loop, zero overhead.
- ``workers>1`` with a picklable ``fn``: shards run on a
  :class:`concurrent.futures.ProcessPoolExecutor`; results are merged in
  shard order, not completion order.
- ``workers>1`` with an *unpicklable* ``fn`` (a closure over live
  simulator state, say): the shards run serially in-process, in shard
  order.  This degrades throughput, never correctness — which is exactly
  the contract callers rely on: stages that must observe shared mutable
  state (e.g. a transport with one circuit-noise stream) deliberately
  pass closures so they stay in-process and keep their draw order.

This module is the only place allowed to touch ``concurrent.futures`` /
``multiprocessing`` directly; rule REP007 of ``repro lint`` rejects raw
use anywhere else.
"""

from __future__ import annotations

import os
import pickle
import random
from concurrent import futures
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ParallelError
from repro.obs.scope import Observer
from repro.sim.rng import derive_rng

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Shards per worker: small enough to amortise submission overhead, large
#: enough that one slow shard cannot idle the rest of the pool.
SHARDS_PER_WORKER = 4

#: Set in pool workers (via initializer) so nested ``pmap`` calls inside a
#: worker degrade to in-process execution instead of forking grandchildren.
_IN_WORKER = False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit argument, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ParallelError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
    if workers < 1:
        raise ParallelError(f"worker count must be >= 1, got {workers}")
    return workers


def shard_bounds(item_count: int, shard_count: int) -> List[Tuple[int, int]]:
    """Balanced, contiguous ``[start, stop)`` bounds partitioning the items.

    Every index in ``range(item_count)`` lands in exactly one shard; shard
    sizes differ by at most one.  The partition is a pure function of
    ``(item_count, shard_count)`` — nothing about workers or timing.
    """
    if item_count < 0:
        raise ParallelError(f"item count must be >= 0, got {item_count}")
    if shard_count < 1:
        raise ParallelError(f"shard count must be >= 1, got {shard_count}")
    if item_count == 0:
        return []
    shard_count = min(shard_count, item_count)
    per_shard = item_count // shard_count
    extra = item_count % shard_count
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(shard_count):
        size = per_shard + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def item_rng(seed: int, seed_path: Sequence[str], index: int) -> random.Random:
    """The RNG stream owned by item ``index`` under ``(seed, seed_path)``.

    A function of the seed, the path, and the item's global index only —
    re-sharding, worker count, and completion order cannot perturb it.
    """
    return derive_rng(seed, *seed_path, "item", str(index))


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _run_shard(
    fn: Callable,
    shard_items: List[T],
    start: int,
    seed: Optional[int],
    seed_path: Tuple[str, ...],
    observed: bool = False,
) -> "List[R] | Tuple[List[R], Observer]":
    """Run one shard; module-level so the process pool can pickle it.

    With ``observed=True`` a fresh shard :class:`Observer` is created here
    (inside the pool worker, when pooled) and passed to ``fn`` as its last
    argument; the shard's results and observer travel back together so the
    caller can absorb observers in shard order.
    """
    if not observed:
        if seed is None:
            return [fn(item) for item in shard_items]
        return [
            fn(item, item_rng(seed, seed_path, start + offset))
            for offset, item in enumerate(shard_items)
        ]
    shard_observer = Observer(name=f"shard@{start}")
    if seed is None:
        results = [fn(item, shard_observer) for item in shard_items]
    else:
        results = [
            fn(item, item_rng(seed, seed_path, start + offset), shard_observer)
            for offset, item in enumerate(shard_items)
        ]
    return results, shard_observer


def _is_picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except (pickle.PicklingError, TypeError, AttributeError):
        return False
    return True


def _run_serial(
    fn: Callable,
    item_list: List[T],
    bounds: List[Tuple[int, int]],
    seed: Optional[int],
    seed_path: Tuple[str, ...],
    observer: Optional[Observer] = None,
) -> List[R]:
    merged: List[R] = []
    for start, stop in bounds:
        if observer is None:
            merged.extend(
                _run_shard(fn, item_list[start:stop], start, seed, seed_path)
            )
        else:
            results, shard_observer = _run_shard(
                fn, item_list[start:stop], start, seed, seed_path, observed=True
            )
            merged.extend(results)
            observer.absorb(shard_observer)
    return merged


def pmap(
    fn: Callable,
    items: Sequence[T],
    *,
    seed: Optional[int] = None,
    seed_path: Sequence[str] = (),
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    observer: Optional[Observer] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` deterministically, optionally in parallel.

    Without ``seed``, calls ``fn(item)``; with a ``seed``, calls
    ``fn(item, rng)`` where ``rng`` is :func:`item_rng` for the item's
    global index — so every item's stream is independent of how the work
    is sharded or scheduled.  Results always come back in item order.

    With an enabled ``observer``, ``fn`` additionally receives a per-shard
    :class:`~repro.obs.scope.Observer` as its last argument; shard
    observers are absorbed back into ``observer`` in shard order, so as
    long as ``fn`` records only additive metrics (counters, histograms)
    and events, the merged snapshot is byte-identical at any worker count.

    ``fn`` must be independent across items (no item may read another's
    output).  A ``fn`` that needs shared mutable in-process state should
    be a closure: closures do not pickle, which routes them through the
    in-process serial path regardless of ``workers``.
    """
    item_list = list(items)
    worker_count = resolve_workers(workers)
    if not item_list:
        return []
    path = tuple(str(element) for element in seed_path)
    shard_count = shards if shards is not None else worker_count * SHARDS_PER_WORKER
    bounds = shard_bounds(len(item_list), shard_count)
    if observer is not None and not observer.enabled:
        observer = None
    if worker_count == 1 or _IN_WORKER or len(bounds) == 1 or not _is_picklable(fn):
        return _run_serial(fn, item_list, bounds, seed, path, observer)
    try:
        with futures.ProcessPoolExecutor(
            max_workers=min(worker_count, len(bounds)), initializer=_mark_worker
        ) as pool:
            pending = [
                pool.submit(
                    _run_shard,
                    fn,
                    item_list[start:stop],
                    start,
                    seed,
                    path,
                    observer is not None,
                )
                for start, stop in bounds
            ]
            merged: List[R] = []
            shard_observers: List[Observer] = []
            # Merge in shard-submission order; completion order is irrelevant.
            for future in pending:
                if observer is None:
                    merged.extend(future.result())
                else:
                    results, shard_observer = future.result()
                    merged.extend(results)
                    shard_observers.append(shard_observer)
            for shard_observer in shard_observers:
                observer.absorb(shard_observer)
            return merged
    except (pickle.PicklingError, TypeError, AttributeError, futures.BrokenExecutor):
        # Unpicklable items/results, or a broken pool: per-item work is
        # independent by contract, so rerunning in-process is equivalent.
        return _run_serial(fn, item_list, bounds, seed, path, observer)
