"""Deterministic parallel execution (the only sanctioned concurrency layer).

See :mod:`repro.parallel.executor` for the contract; rule REP007 of
``repro lint`` keeps raw ``multiprocessing`` / ``concurrent.futures`` use
out of the rest of the tree.
"""

from repro.parallel.executor import (
    SHARDS_PER_WORKER,
    WORKERS_ENV,
    item_rng,
    pmap,
    resolve_workers,
    shard_bounds,
)

__all__ = [
    "SHARDS_PER_WORKER",
    "WORKERS_ENV",
    "item_rng",
    "pmap",
    "resolve_workers",
    "shard_bounds",
]
