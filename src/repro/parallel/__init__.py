"""Deterministic parallel execution (the only sanctioned concurrency layer).

See :mod:`repro.parallel.executor` for the contract; rule REP007 of
``repro lint`` keeps raw ``multiprocessing`` / ``concurrent.futures`` use
out of the rest of the tree.
"""

from repro.parallel.executor import (
    PMAP_SHARD_POINT,
    QUARANTINED,
    SHARDS_PER_WORKER,
    WORKERS_ENV,
    ShardQuarantine,
    item_rng,
    pmap,
    resolve_workers,
    shard_bounds,
)

__all__ = [
    "PMAP_SHARD_POINT",
    "QUARANTINED",
    "SHARDS_PER_WORKER",
    "WORKERS_ENV",
    "ShardQuarantine",
    "item_rng",
    "pmap",
    "resolve_workers",
    "shard_bounds",
]
