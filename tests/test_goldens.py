"""Golden snapshots: small-world report text pinned byte-for-byte.

The determinism contract is not "the numbers are close" but "the artifact
is the artifact": same seed, same text, on any machine, at any worker
count.  When a golden legitimately moves (a model change), regenerate with
``PYTHONPATH=src python tests/goldens/regenerate.py`` and review the diff.
"""

import pathlib

import pytest

from tests.goldens.cases import GOLDEN_CASES

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_matches(name):
    pinned = (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    current = GOLDEN_CASES[name]() + "\n"
    assert current == pinned, (
        f"golden {name!r} drifted; if the change is intentional, run "
        "PYTHONPATH=src python tests/goldens/regenerate.py and commit the diff"
    )


def test_every_golden_file_has_a_case():
    on_disk = {path.stem for path in GOLDEN_DIR.glob("*.txt")}
    assert on_disk == set(GOLDEN_CASES)
