"""Tests for repro.population.corpus — vocabulary sanity."""

from repro.population.corpus import (
    LANGUAGE_DISPLAY_NAMES,
    LANGUAGE_VOCABULARY,
    LANGUAGES,
    NON_ENGLISH_LANGUAGES,
    TOPIC_DISPLAY_NAMES,
    TOPIC_VOCABULARY,
    TOPICS,
    TORHOST_DEFAULT_PAGE,
    words_for_language,
    words_for_topic,
)


class TestTopics:
    def test_eighteen_topics(self):
        assert len(TOPICS) == 18

    def test_every_topic_has_vocabulary(self):
        for topic in TOPICS:
            assert len(words_for_topic(topic)) >= 20

    def test_every_topic_has_display_name(self):
        assert set(TOPIC_DISPLAY_NAMES) == set(TOPICS)

    def test_vocabularies_are_mostly_distinct(self):
        # Distinct vocabularies are what make topics learnable.
        for a in TOPICS:
            for b in TOPICS:
                if a >= b:
                    continue
                overlap = set(TOPIC_VOCABULARY[a]) & set(TOPIC_VOCABULARY[b])
                assert len(overlap) < min(
                    len(TOPIC_VOCABULARY[a]), len(TOPIC_VOCABULARY[b])
                ) * 0.5


class TestLanguages:
    def test_seventeen_languages(self):
        assert len(LANGUAGES) == 17

    def test_sixteen_non_english(self):
        assert len(NON_ENGLISH_LANGUAGES) == 16
        assert "en" not in NON_ENGLISH_LANGUAGES

    def test_every_language_has_vocabulary(self):
        for language in LANGUAGES:
            assert len(words_for_language(language)) >= 20

    def test_display_names_complete(self):
        assert set(LANGUAGE_DISPLAY_NAMES) == set(LANGUAGES)
        assert LANGUAGE_DISPLAY_NAMES["bnt"] == "Bantu"

    def test_scripts_are_distinctive(self):
        # Non-Latin languages must actually use their scripts.
        assert any("Ѐ" <= ch <= "ӿ" for w in LANGUAGE_VOCABULARY["ru"] for ch in w)
        assert any("؀" <= ch <= "ۿ" for w in LANGUAGE_VOCABULARY["ar"] for ch in w)
        assert any(ord(ch) > 0x3000 for w in LANGUAGE_VOCABULARY["zh"] for ch in w)
        assert any(ord(ch) > 0x3000 for w in LANGUAGE_VOCABULARY["ja"] for ch in w)


class TestTorhostPage:
    def test_long_enough_to_classify(self):
        # Must pass the crawler's 20-word cutoff.
        assert len(TORHOST_DEFAULT_PAGE.split()) >= 20

    def test_mentions_hosting(self):
        assert "hosting" in TORHOST_DEFAULT_PAGE.lower()
