"""Tests for repro.hs.rendezvous — end-to-end connection establishment."""

import pytest

from repro.client.client import TorClient
from repro.crypto.keys import KeyPair
from repro.hs import HiddenService, connect_to_service
from repro.hs.rendezvous import RendezvousProtocol
from repro.net.endpoint import ConnectOutcome, ServiceEndpoint
from repro.sim.clock import DAY
from repro.sim.rng import derive_rng


@pytest.fixture()
def rendezvous_world(network):
    """A published service with intro points plus a guard-equipped client."""
    rng = derive_rng(55, "rdv")
    service = HiddenService(
        keypair=KeyPair.generate(rng), online_from=0, operator_ip=0xAABBCCDD
    )
    service.host.add_endpoint(ServiceEndpoint(port=80, banner="hello"))
    protocol = RendezvousProtocol(network, None, rng)
    service.introduction_points = protocol.pick_introduction_points(
        network.consensus
    )
    protocol.register_service(service)
    network.publish_service(service)
    client = TorClient(ip=7, rng=derive_rng(55, "client"))
    client.refresh_guards(network)
    return network, service, client, rng


class TestIntroductionPoints:
    def test_three_points_chosen(self, network):
        protocol = RendezvousProtocol(network, None, derive_rng(1, "p"))
        points = protocol.pick_introduction_points(network.consensus)
        assert len(points) == 3
        assert len(set(points)) == 3

    def test_points_are_consensus_relays(self, network):
        protocol = RendezvousProtocol(network, None, derive_rng(2, "p"))
        for hex_fp in protocol.pick_introduction_points(network.consensus):
            assert network.consensus.entry_for(bytes.fromhex(hex_fp)) is not None


class TestConnect:
    def test_establishes_circuit(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        circuit = connect_to_service(network, client, service.onion, rng)
        assert circuit is not None
        assert circuit.onion == service.onion

    def test_client_guard_from_pinned_set(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        circuit = connect_to_service(network, client, service.onion, rng)
        assert circuit.client_guard in client.guards.fingerprints

    def test_service_guard_from_service_set(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        circuit = connect_to_service(network, client, service.onion, rng)
        assert circuit.service_guard in service.ensure_guards(network).fingerprints

    def test_rendezvous_point_distinct_from_guards(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        circuit = connect_to_service(network, client, service.onion, rng)
        assert circuit.rendezvous_point != circuit.client_guard
        assert circuit.rendezvous_point != circuit.service_guard

    def test_both_circuits_end_at_rendezvous_point(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        circuit = connect_to_service(network, client, service.onion, rng)
        assert circuit.client_circuit.last_hop == circuit.rendezvous_point
        assert circuit.service_circuit.last_hop == circuit.rendezvous_point

    def test_application_stream(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        circuit = connect_to_service(network, client, service.onion, rng)
        result = circuit.connect(network, 80, rng)
        assert result.outcome is ConnectOutcome.OPEN
        assert result.banner == "hello"

    def test_closed_port_refused_over_rendezvous(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        circuit = connect_to_service(network, client, service.onion, rng)
        assert circuit.connect(network, 81, rng).outcome is ConnectOutcome.REFUSED


class TestFailureModes:
    def test_no_descriptor(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        ghost = HiddenService(keypair=KeyPair.generate(rng))
        assert connect_to_service(network, client, ghost.onion, rng) is None

    def test_stale_descriptor_after_rotation(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        network.clock.advance_by(DAY + 3600)
        network.rebuild_consensus()
        client.refresh_guards(network)
        assert connect_to_service(network, client, service.onion, rng) is None

    def test_service_went_offline(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        service.online_until = network.clock.now  # dies now
        circuit = connect_to_service(network, client, service.onion, rng)
        assert circuit is None

    def test_vanished_introduction_points(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        # Kill every introduction point.
        for hex_fp in service.introduction_points:
            relay = network.relay_for_fingerprint(bytes.fromhex(hex_fp))
            relay.set_reachable(False, network.clock.now)
        network.clock.advance_by(3600)
        network.rebuild_consensus()
        client.refresh_guards(network)
        builder_rng = derive_rng(56, "retry")
        circuit = connect_to_service(network, client, service.onion, builder_rng)
        assert circuit is None

    def test_failure_reasons_recorded(self, rendezvous_world):
        network, service, client, rng = rendezvous_world
        from repro.client.circuits import CircuitBuilder

        protocol = RendezvousProtocol(
            network, CircuitBuilder(client.guards, rng), rng
        )
        ghost = HiddenService(keypair=KeyPair.generate(rng))
        protocol.connect(ghost.onion, client.guards)
        assert protocol.failures == ["no-descriptor"]
