"""Tests for repro.net.endpoint."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.endpoint import (
    ConnectOutcome,
    ConnectResult,
    ServiceEndpoint,
    SimpleHost,
)
from repro.sim.clock import DAY


class TestConnectOutcome:
    def test_open_counts_as_open(self):
        assert ConnectOutcome.OPEN.counts_as_open

    def test_abnormal_counts_as_open(self):
        # Section III: the Skynet port-55080 error was counted as open.
        assert ConnectOutcome.ABNORMAL_ERROR.counts_as_open

    @pytest.mark.parametrize(
        "outcome",
        [ConnectOutcome.REFUSED, ConnectOutcome.TIMEOUT, ConnectOutcome.UNREACHABLE],
    )
    def test_failures_do_not_count(self, outcome):
        assert not outcome.counts_as_open


class TestConnectResult:
    def test_truncated_open_is_not_ok(self):
        # The port counts as open to a SYN scan, but no conversation happened.
        result = ConnectResult(
            outcome=ConnectOutcome.OPEN, port=80, truncated=True
        )
        assert result.outcome.counts_as_open
        assert not result.ok

    def test_defaults_are_clean(self):
        result = ConnectResult(outcome=ConnectOutcome.OPEN, port=80)
        assert not result.truncated
        assert result.latency == 0
        assert result.ok


class TestServiceEndpoint:
    def test_plain_open(self):
        endpoint = ServiceEndpoint(port=80, banner="hi")
        result = endpoint.connect(random.Random(0))
        assert result.outcome is ConnectOutcome.OPEN
        assert result.banner == "hi"
        assert result.ok

    def test_abnormal_error(self):
        endpoint = ServiceEndpoint(port=55080, abnormal_error=True)
        result = endpoint.connect(random.Random(0))
        assert result.outcome is ConnectOutcome.ABNORMAL_ERROR
        assert not result.ok
        assert result.error_message

    def test_timeout_probability_one_always_times_out(self):
        endpoint = ServiceEndpoint(port=80, timeout_probability=1.0)
        result = endpoint.connect(random.Random(0))
        assert result.outcome is ConnectOutcome.TIMEOUT
        assert result.error_message == "connection timed out"
        assert not result.outcome.counts_as_open

    def test_timeout_probability_zero_never_times_out(self):
        endpoint = ServiceEndpoint(port=80, timeout_probability=0.0)
        for seed in range(20):
            result = endpoint.connect(random.Random(seed))
            assert result.outcome is ConnectOutcome.OPEN

    def test_timeout_probability_follows_the_rng_draw(self):
        # The first draw of Random(0) is ~0.844: above 0.5 the endpoint
        # answers, at a higher threshold the same draw times out.
        draw = random.Random(0).random()
        endpoint = ServiceEndpoint(port=80, timeout_probability=0.5)
        assert draw > 0.5
        assert endpoint.connect(random.Random(0)).outcome is ConnectOutcome.OPEN
        flaky = ServiceEndpoint(port=80, timeout_probability=min(1.0, draw + 0.01))
        assert flaky.connect(random.Random(0)).outcome is ConnectOutcome.TIMEOUT

    def test_port_range_validated(self):
        with pytest.raises(NetworkError):
            ServiceEndpoint(port=0)
        with pytest.raises(NetworkError):
            ServiceEndpoint(port=70000)

    def test_timeout_probability_validated(self):
        with pytest.raises(NetworkError):
            ServiceEndpoint(port=80, timeout_probability=1.5)
        with pytest.raises(NetworkError):
            ServiceEndpoint(port=80, timeout_probability=-0.1)


class TestSimpleHost:
    def test_add_and_lookup_endpoint(self):
        host = SimpleHost()
        host.add_endpoint(ServiceEndpoint(port=80))
        assert host.endpoint_on(80) is not None
        assert host.endpoint_on(81) is None

    def test_duplicate_port_rejected(self):
        host = SimpleHost()
        host.add_endpoint(ServiceEndpoint(port=80))
        with pytest.raises(NetworkError):
            host.add_endpoint(ServiceEndpoint(port=80))

    def test_open_ports_sorted(self):
        host = SimpleHost()
        for port in (443, 22, 80):
            host.add_endpoint(ServiceEndpoint(port=port))
        assert host.open_ports == [22, 80, 443]

    def test_online_window(self):
        host = SimpleHost(online_from=100, online_until=200)
        assert not host.is_online(99)
        assert host.is_online(100)
        assert host.is_online(199)
        assert not host.is_online(200)

    def test_open_ended_lifetime(self):
        host = SimpleHost(online_from=0, online_until=None)
        assert host.is_online(10**10)

    def test_down_days(self):
        host = SimpleHost(online_from=0, down_days=frozenset({1}))
        assert host.is_online(DAY - 1)
        assert not host.is_online(DAY)  # day 1
        assert not host.is_online(2 * DAY - 1)
        assert host.is_online(2 * DAY)
