"""Tests for repro.net.address."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkError
from repro.net.address import AddressPool, ip_to_str, str_to_ip


class TestConversions:
    def test_known_value(self):
        assert ip_to_str(0xC0A80001) == "192.168.0.1"

    def test_parse_known_value(self):
        assert str_to_ip("10.0.0.1") == 0x0A000001

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, ip):
        assert str_to_ip(ip_to_str(ip)) == ip

    def test_out_of_range_rejected(self):
        with pytest.raises(NetworkError):
            ip_to_str(1 << 32)

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            ip_to_str(-1)

    @pytest.mark.parametrize(
        "text", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", "-1.0.0.0", ""]
    )
    def test_bad_strings_rejected(self, text):
        with pytest.raises(NetworkError):
            str_to_ip(text)


class TestAddressPool:
    def test_allocates_unique(self):
        pool = AddressPool(random.Random(0))
        addresses = pool.allocate_many(1000)
        assert len(set(addresses)) == 1000

    def test_avoids_reserved_prefixes(self):
        pool = AddressPool(random.Random(0))
        for ip in pool.allocate_many(500):
            assert (ip >> 24) not in {0, 10, 127, 169, 172, 192, 224, 240, 255}

    def test_deterministic_per_seed(self):
        a = AddressPool(random.Random(7)).allocate_many(10)
        b = AddressPool(random.Random(7)).allocate_many(10)
        assert a == b

    def test_allocated_count(self):
        pool = AddressPool(random.Random(0))
        pool.allocate_many(3)
        assert pool.allocated_count == 3

    def test_negative_count_rejected(self):
        pool = AddressPool(random.Random(0))
        with pytest.raises(NetworkError):
            pool.allocate_many(-1)
