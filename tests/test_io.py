"""Tests for repro.io — artifact (de)serialisation."""

import pytest

from repro.analysis.report import ExperimentReport
from repro.errors import ReproError
from repro.io import (
    certificates_from_dict,
    certificates_to_dict,
    classification_from_dict,
    classification_to_dict,
    crawl_from_dict,
    crawl_to_dict,
    distribution_from_dict,
    distribution_to_dict,
    load_json,
    ranking_from_dict,
    ranking_to_dict,
    report_from_dict,
    report_to_dict,
    save_json,
    scan_from_dict,
    scan_to_dict,
    timeseries_from_dict,
    timeseries_to_dict,
)
from repro.popularity.ranking import PopularityRanking
from repro.popularity.timeseries import RequestTimeSeries
from repro.scan.results import PortDistribution


def make_report():
    report = ExperimentReport(experiment="x")
    report.add("alpha", 100, 103)
    report.add("beta", None, 7)
    report.note("a note")
    return report


class TestReportRoundtrip:
    def test_roundtrip_preserves_everything(self):
        report = make_report()
        clone = report_from_dict(report_to_dict(report))
        assert clone.experiment == report.experiment
        assert [(r.label, r.paper, r.measured) for r in clone.rows] == [
            (r.label, r.paper, r.measured) for r in report.rows
        ]
        assert clone.notes == report.notes
        assert clone.max_error() == report.max_error()

    def test_kind_mismatch_rejected(self):
        data = report_to_dict(make_report())
        data["kind"] = "something-else"
        with pytest.raises(ReproError):
            report_from_dict(data)

    def test_schema_mismatch_rejected(self):
        data = report_to_dict(make_report())
        data["schema"] = 999
        with pytest.raises(ReproError):
            report_from_dict(data)


class TestRankingRoundtrip:
    def test_roundtrip(self):
        ranking = PopularityRanking.from_counts(
            {"aa" * 8 + ".onion": 50, "bb" * 8 + ".onion": 99},
            {"bb" * 8 + ".onion": "Goldnet"},
        )
        clone = ranking_from_dict(ranking_to_dict(ranking))
        assert len(clone) == 2
        assert clone.rank_of("bb" * 8 + ".onion") == 1
        assert clone.row_for("bb" * 8 + ".onion").description == "Goldnet"

    def test_limit(self):
        ranking = PopularityRanking.from_counts(
            {f"{i:02d}" * 8 + ".onion": 100 - i for i in range(10)}
        )
        data = ranking_to_dict(ranking, limit=3)
        assert len(data["rows"]) == 3


class TestDistributionRoundtrip:
    def test_roundtrip(self):
        distribution = PortDistribution(
            counts={"80-http": 5, "other": 2}, unique_ports=4, total_open=7
        )
        clone = distribution_from_dict(distribution_to_dict(distribution))
        assert clone.counts == distribution.counts
        assert clone.unique_ports == 4
        assert clone.total_open == 7
        assert clone.as_rows()[-1] == ("other", 2)


class TestScanRoundtrip:
    def test_roundtrip_is_exact(self, small_pipeline):
        scan = small_pipeline.scan()
        data = scan_to_dict(scan)
        clone = scan_from_dict(data)
        assert clone.scanned_onions == scan.scanned_onions
        assert clone.descriptor_onions == scan.descriptor_onions
        assert clone.reachable_onions == scan.reachable_onions
        assert clone.open_ports == scan.open_ports
        assert clone.timeouts == scan.timeouts
        assert clone.probes_answered == scan.probes_answered
        # Re-encoding the clone reproduces the encoding byte-for-byte —
        # the invariant repro.store's content addresses rest on.
        assert scan_to_dict(clone) == data


class TestCertificatesRoundtrip:
    def test_roundtrip_is_exact(self, small_pipeline):
        analysis = small_pipeline.certificates()
        data = certificates_to_dict(analysis)
        clone = certificates_from_dict(data)
        assert clone.total_certificates == analysis.total_certificates
        assert clone.self_signed_mismatch == analysis.self_signed_mismatch
        assert clone.dominant_cn == analysis.dominant_cn
        assert clone.cn_histogram == analysis.cn_histogram
        assert certificates_to_dict(clone) == data


class TestCrawlRoundtrip:
    def test_roundtrip_is_exact(self, small_pipeline):
        crawl = small_pipeline.crawl()
        data = crawl_to_dict(crawl)
        clone = crawl_from_dict(data)
        assert clone.pages == crawl.pages
        assert clone.tried == crawl.tried
        assert clone.open_at_crawl == crawl.open_at_crawl
        assert clone.connected == crawl.connected
        assert crawl_to_dict(clone) == data

    def test_destination_index_rebuilt(self, small_pipeline):
        crawl = small_pipeline.crawl()
        clone = crawl_from_dict(crawl_to_dict(crawl))
        page = crawl.pages[0]
        assert clone._page_index[page.destination] == page


class TestClassificationRoundtrip:
    def test_roundtrip_is_exact(self, small_pipeline):
        outcome = small_pipeline.classify()
        data = classification_to_dict(outcome)
        clone = classification_from_dict(data)
        assert clone.language_counts == outcome.language_counts
        assert clone.topic_counts == outcome.topic_counts
        assert clone.classified_pages == outcome.classified_pages
        # Insertion order carries ranking-relevant tie-breaks; it must
        # survive the trip, not just the mapping contents.
        assert list(clone.page_topics) == list(outcome.page_topics)
        assert classification_to_dict(clone) == data


class TestTimeseriesRoundtrip:
    def test_roundtrip_is_exact(self):
        series = RequestTimeSeries(start=100, bucket_seconds=3600, counts=[1, 0, 7])
        data = timeseries_to_dict(series)
        clone = timeseries_from_dict(data)
        assert clone.start == 100
        assert clone.bucket_seconds == 3600
        assert clone.counts == [1, 0, 7]
        assert timeseries_to_dict(clone) == data


class TestStrictLoaders:
    """Loaders fail loudly at the boundary, never with a bare KeyError."""

    @pytest.mark.parametrize(
        "encode, decode",
        [
            (lambda: report_to_dict(make_report()), report_from_dict),
            (
                lambda: timeseries_to_dict(
                    RequestTimeSeries(start=0, bucket_seconds=60, counts=[1])
                ),
                timeseries_from_dict,
            ),
        ],
    )
    def test_missing_field_raises_repro_error(self, encode, decode):
        data = encode()
        doomed = next(k for k in data if k not in ("schema", "kind"))
        del data[doomed]
        with pytest.raises(ReproError, match="missing required field"):
            decode(data)

    def test_missing_row_field_names_the_row(self):
        data = report_to_dict(make_report())
        del data["rows"][0]["measured"]
        with pytest.raises(ReproError, match="report row"):
            report_from_dict(data)

    def test_newer_schema_rejected_with_upgrade_hint(self):
        data = report_to_dict(make_report())
        data["schema"] = 2
        with pytest.raises(ReproError, match="newer than this build"):
            report_from_dict(data)

    def test_older_schema_rejected(self):
        data = report_to_dict(make_report())
        data["schema"] = 0
        with pytest.raises(ReproError, match="unsupported schema"):
            report_from_dict(data)

    def test_non_integer_schema_rejected(self):
        data = report_to_dict(make_report())
        data["schema"] = "1"
        with pytest.raises(ReproError, match="no integer schema"):
            report_from_dict(data)

    def test_wrong_kind_rejected(self):
        data = timeseries_to_dict(
            RequestTimeSeries(start=0, bucket_seconds=60, counts=[])
        )
        with pytest.raises(ReproError, match="expected artifact kind"):
            scan_from_dict(data)

    def test_non_mapping_fragment_rejected(self):
        data = crawl_to_dict(
            crawl_from_dict(
                {
                    "schema": 1,
                    "kind": "crawl-results",
                    "pages": [],
                    "tried": 0,
                    "open_at_crawl": 0,
                    "connected": 0,
                    "failures": {
                        "transient_recovered": 0,
                        "retries_exhausted": 0,
                        "permanent": 0,
                        "retry_attempts": 0,
                    },
                }
            )
        )
        data["failures"] = None
        with pytest.raises(ReproError, match="unreadable"):
            crawl_from_dict(data)


class TestFiles:
    def test_save_and_load(self, tmp_path):
        report = make_report()
        path = tmp_path / "sub" / "report.json"
        save_json(report_to_dict(report), path)
        assert report_from_dict(load_json(path)).experiment == "x"
