"""Tests for repro.io — artifact (de)serialisation."""

import pytest

from repro.analysis.report import ExperimentReport
from repro.errors import ReproError
from repro.io import (
    distribution_from_dict,
    distribution_to_dict,
    load_json,
    ranking_from_dict,
    ranking_to_dict,
    report_from_dict,
    report_to_dict,
    save_json,
)
from repro.popularity.ranking import PopularityRanking
from repro.scan.results import PortDistribution


def make_report():
    report = ExperimentReport(experiment="x")
    report.add("alpha", 100, 103)
    report.add("beta", None, 7)
    report.note("a note")
    return report


class TestReportRoundtrip:
    def test_roundtrip_preserves_everything(self):
        report = make_report()
        clone = report_from_dict(report_to_dict(report))
        assert clone.experiment == report.experiment
        assert [(r.label, r.paper, r.measured) for r in clone.rows] == [
            (r.label, r.paper, r.measured) for r in report.rows
        ]
        assert clone.notes == report.notes
        assert clone.max_error() == report.max_error()

    def test_kind_mismatch_rejected(self):
        data = report_to_dict(make_report())
        data["kind"] = "something-else"
        with pytest.raises(ReproError):
            report_from_dict(data)

    def test_schema_mismatch_rejected(self):
        data = report_to_dict(make_report())
        data["schema"] = 999
        with pytest.raises(ReproError):
            report_from_dict(data)


class TestRankingRoundtrip:
    def test_roundtrip(self):
        ranking = PopularityRanking.from_counts(
            {"aa" * 8 + ".onion": 50, "bb" * 8 + ".onion": 99},
            {"bb" * 8 + ".onion": "Goldnet"},
        )
        clone = ranking_from_dict(ranking_to_dict(ranking))
        assert len(clone) == 2
        assert clone.rank_of("bb" * 8 + ".onion") == 1
        assert clone.row_for("bb" * 8 + ".onion").description == "Goldnet"

    def test_limit(self):
        ranking = PopularityRanking.from_counts(
            {f"{i:02d}" * 8 + ".onion": 100 - i for i in range(10)}
        )
        data = ranking_to_dict(ranking, limit=3)
        assert len(data["rows"]) == 3


class TestDistributionRoundtrip:
    def test_roundtrip(self):
        distribution = PortDistribution(
            counts={"80-http": 5, "other": 2}, unique_ports=4, total_open=7
        )
        clone = distribution_from_dict(distribution_to_dict(distribution))
        assert clone.counts == distribution.counts
        assert clone.unique_ports == 4
        assert clone.total_open == 7
        assert clone.as_rows()[-1] == ("other", 2)


class TestFiles:
    def test_save_and_load(self, tmp_path):
        report = make_report()
        path = tmp_path / "sub" / "report.json"
        save_json(report_to_dict(report), path)
        assert report_from_dict(load_json(path)).experiment == "x"
