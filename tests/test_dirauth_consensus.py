"""Tests for repro.dirauth.consensus — documents and the 2-per-IP rule."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyPair
from repro.dirauth.consensus import (
    MAX_RELAYS_PER_IP,
    Consensus,
    ConsensusEntry,
    apply_per_ip_limit,
)
from repro.errors import ConsensusError
from repro.relay.flags import RelayFlags

_rng = random.Random(0)


def make_entry(ip=1, bandwidth=100, flags=RelayFlags.RUNNING, nickname="r", seed=None):
    keypair = KeyPair.generate(_rng if seed is None else random.Random(seed))
    return ConsensusEntry(
        fingerprint=keypair.fingerprint,
        nickname=nickname,
        ip=ip,
        or_port=9001,
        bandwidth=bandwidth,
        flags=flags,
    )


class TestConsensusEntry:
    def test_address(self):
        entry = make_entry(ip=42)
        assert entry.address == (42, 9001)

    def test_has_flag(self):
        entry = make_entry(flags=RelayFlags.RUNNING | RelayFlags.HSDIR)
        assert entry.has(RelayFlags.HSDIR)
        assert not entry.has(RelayFlags.GUARD)


class TestPerIpLimit:
    def test_keeps_at_most_two_per_ip(self):
        entries = [make_entry(ip=5, bandwidth=b) for b in (10, 20, 30, 40)]
        kept = apply_per_ip_limit(entries)
        assert len(kept) == MAX_RELAYS_PER_IP
        assert sorted(e.bandwidth for e in kept) == [30, 40]

    def test_different_ips_unaffected(self):
        entries = [make_entry(ip=i) for i in range(10)]
        assert len(apply_per_ip_limit(entries)) == 10

    def test_keeps_highest_bandwidth(self):
        entries = [make_entry(ip=5, bandwidth=b) for b in (100, 1, 50)]
        kept = apply_per_ip_limit(entries)
        assert {e.bandwidth for e in kept} == {100, 50}

    def test_preserves_input_order(self):
        entries = [make_entry(ip=i % 3, bandwidth=100 + i) for i in range(9)]
        kept = apply_per_ip_limit(entries)
        indexes = [entries.index(e) for e in kept]
        assert indexes == sorted(indexes)

    def test_custom_limit(self):
        entries = [make_entry(ip=5, bandwidth=b) for b in (1, 2, 3)]
        assert len(apply_per_ip_limit(entries, limit=1)) == 1

    def test_zero_limit_rejected(self):
        with pytest.raises(ConsensusError):
            apply_per_ip_limit([], limit=0)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),  # ip
                st.integers(min_value=1, max_value=1000),  # bandwidth
            ),
            max_size=40,
        )
    )
    def test_invariant_never_more_than_two_per_ip(self, spec):
        entries = [make_entry(ip=ip, bandwidth=bw) for ip, bw in spec]
        kept = apply_per_ip_limit(entries)
        per_ip = {}
        for entry in kept:
            per_ip[entry.ip] = per_ip.get(entry.ip, 0) + 1
        assert all(count <= MAX_RELAYS_PER_IP for count in per_ip.values())
        # And nothing was dropped needlessly: every IP with entries keeps
        # min(count, 2) of them.
        want = {}
        for entry in entries:
            want[entry.ip] = min(MAX_RELAYS_PER_IP, want.get(entry.ip, 0) + 1)
        assert {ip: per_ip.get(ip, 0) for ip in want} == want


class TestConsensus:
    def test_lookup_and_iteration(self):
        entries = tuple(make_entry(ip=i) for i in range(5))
        consensus = Consensus(valid_after=100, entries=entries)
        assert len(consensus) == 5
        assert list(consensus) == list(entries)
        assert consensus.entry_for(entries[0].fingerprint) == entries[0]
        assert entries[0].fingerprint in consensus

    def test_duplicate_fingerprint_rejected(self):
        entry = make_entry(seed=1)
        with pytest.raises(ConsensusError):
            Consensus(valid_after=0, entries=(entry, entry))

    def test_with_flag(self):
        hsdir = make_entry(ip=1, flags=RelayFlags.RUNNING | RelayFlags.HSDIR)
        plain = make_entry(ip=2, flags=RelayFlags.RUNNING)
        consensus = Consensus(valid_after=0, entries=(hsdir, plain))
        assert consensus.with_flag(RelayFlags.HSDIR) == [hsdir]

    def test_hsdir_ring_contains_only_hsdirs(self):
        hsdir = make_entry(ip=1, flags=RelayFlags.RUNNING | RelayFlags.HSDIR)
        plain = make_entry(ip=2, flags=RelayFlags.RUNNING)
        consensus = Consensus(valid_after=0, entries=(hsdir, plain))
        assert consensus.hsdir_count == 1
        assert hsdir.fingerprint in consensus.hsdir_ring

    def test_hsdir_ring_cached(self):
        consensus = Consensus(valid_after=0, entries=(make_entry(),))
        assert consensus.hsdir_ring is consensus.hsdir_ring
