"""The epoch controller: supervised epochs, batch parity, warm resume."""

from repro.experiments.pipeline import MeasurementPipeline
from repro.experiments.table2_popularity import run_table2
from repro.service import VIEW_KINDS, EpochController, epoch_run_id
from repro.service.results import build_views
from repro.store import ArtifactStore, digest_of
from repro.worldbuild import advance_epoch

from tests.conftest import (
    SERVICE_EPOCHS,
    SERVICE_SCALE,
    SERVICE_SEED,
    SERVICE_SWEEP_HOURS,
    make_service_config,
)


def counter_total(observer, name, **labels):
    """Sum a counter across label sets matching ``labels``."""
    total = 0
    for metric_name, metric_labels, metric in observer.registry.items():
        if metric_name != name:
            continue
        attached = dict(metric_labels)
        if all(attached.get(key) == value for key, value in labels.items()):
            total += metric.value
    return total


class TestSupervisedEpochs:
    def test_runs_the_configured_number_of_epochs(self, service_controller):
        records = service_controller.records
        assert len(records) == SERVICE_EPOCHS
        assert [record.epoch for record in records] == [0, 1, 2]

    def test_every_epoch_completes_under_the_crash_schedule(
        self, service_controller
    ):
        for record in service_controller.records:
            assert record.manifest.complete
            # The moderate profile injects six crashes per epoch; each one
            # consumes a restart and the epoch still lands complete.
            assert record.crashes >= 5
            assert record.restarts == record.crashes

    def test_epochs_advance_the_world_deterministically(
        self, service_controller
    ):
        records = service_controller.records
        assert records[0].seed == SERVICE_SEED
        expected = [
            advance_epoch(SERVICE_SEED, SERVICE_SCALE, epoch).seed
            for epoch in range(SERVICE_EPOCHS)
        ]
        assert [record.seed for record in records] == expected
        # Derived epochs genuinely move the world.
        assert len(set(expected)) == SERVICE_EPOCHS

    def test_records_pin_epoch_run_ids_and_view_digests(
        self, service_controller
    ):
        for record in service_controller.records:
            assert record.run_id == epoch_run_id(record.epoch)
            assert set(record.views) == set(VIEW_KINDS)
            assert record.digests == {
                kind: digest_of(view) for kind, view in record.views.items()
            }

    def test_observer_exports_the_service_metrics(self, service_controller):
        observer = service_controller.observer
        assert counter_total(observer, "service_epochs_total") == SERVICE_EPOCHS
        assert counter_total(observer, "supervise_crashes_total") >= 15
        gauges = {
            name: metric.value
            for name, _labels, metric in observer.registry.items()
            if name == "service_current_epoch"
        }
        assert gauges["service_current_epoch"] == SERVICE_EPOCHS - 1

    def test_crash_restarts_resume_warm_within_each_epoch(
        self, service_controller
    ):
        # Each crash restart replays the completed stages from the store,
        # so the hit counter climbs well past the miss counter.
        observer = service_controller.observer
        hits = counter_total(observer, "store_hits_total")
        misses = counter_total(observer, "store_misses_total")
        assert misses >= SERVICE_EPOCHS  # every epoch computed something
        assert hits > misses


class TestBatchParity:
    def test_service_views_match_one_shot_batch_runs(self, service_controller):
        """The acceptance bar: every query view byte-identical to batch.

        Rebuilds each epoch's views from a fresh un-supervised, un-stored
        pipeline over the same advanced world and compares content
        digests (which are also the ETags the API serves).
        """
        prev_views = None
        for record in service_controller.records:
            world = advance_epoch(SERVICE_SEED, SERVICE_SCALE, record.epoch)
            pipeline = MeasurementPipeline(seed=world.seed, scale=world.scale)
            table2 = run_table2(
                seed=world.seed,
                population=pipeline.population,
                sweep_hours=SERVICE_SWEEP_HOURS,
            )
            batch_views = build_views(
                world,
                scan=pipeline.scan(),
                classification=pipeline.classify(),
                table2=table2,
                prev_views=prev_views,
            )
            for kind in VIEW_KINDS:
                assert digest_of(batch_views[kind]) == record.digests[kind], (
                    f"epoch {record.epoch} view {kind!r} diverged from the "
                    "one-shot batch run"
                )
            prev_views = batch_views


class TestWarmResume:
    def test_second_controller_over_same_store_recomputes_nothing(
        self, service_controller, service_store_root
    ):
        ledger = ArtifactStore(service_store_root).ledger
        misses_before = sum(
            1 for entry in ledger.entries() if entry["event"] == "miss"
        )

        warm = EpochController(make_service_config(), service_store_root)
        warm.run()

        misses_after = sum(
            1 for entry in ledger.entries() if entry["event"] == "miss"
        )
        assert misses_after == misses_before
        # Warm epochs land on the same bytes, and the hits show up in the
        # service observer (second-epoch warm hits are part of the
        # acceptance bar).
        for cold, hot in zip(service_controller.records, warm.records):
            assert cold.digests == hot.digests
        assert counter_total(warm.observer, "store_hits_total") >= 7
