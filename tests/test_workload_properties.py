"""Property-based tests for workload allocation arithmetic."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.client.workload import (
    PopularityWorkload,
    WorkloadSpec,
    diurnal_weight,
    zipf_weights,
)
from repro.crypto.onion import onion_address_from_key
from repro.errors import ConfigError
from repro.sim.clock import DAY, HOUR
from repro.sim.rng import derive_rng


def make_workload(seed=0):
    spec = WorkloadSpec(window_start=0, window_end=2 * HOUR)
    return PopularityWorkload(spec, derive_rng(seed, "wp"))


def onions(count, seed=0):
    import random

    rng = random.Random(seed)
    return [onion_address_from_key(rng.randbytes(64)) for _ in range(count)]


class TestSpreadProperties:
    @settings(max_examples=50)
    @given(
        total=st.integers(min_value=0, max_value=5000),
        count=st.integers(min_value=1, max_value=40),
        exponent=st.floats(min_value=0.0, max_value=2.0),
        offset=st.integers(min_value=0, max_value=100),
    )
    def test_spread_sums_exactly(self, total, count, exponent, offset):
        workload = make_workload()
        spread = workload._spread(total, onions(count), exponent, offset)
        assert sum(spread.values()) == total
        assert all(value > 0 for value in spread.values())

    @settings(max_examples=30)
    @given(
        total=st.integers(min_value=100, max_value=5000),
        count=st.integers(min_value=2, max_value=30),
    )
    def test_spread_respects_rank_order(self, total, count):
        targets = onions(count)
        spread = make_workload()._spread(total, targets, exponent=1.2)
        allocations = [spread.get(onion, 0) for onion in targets]
        assert all(a >= b for a, b in zip(allocations, allocations[1:]))

    def test_spread_empty_targets(self):
        assert make_workload()._spread(100, [], 1.0) == {}

    def test_spread_zero_total(self):
        assert make_workload()._spread(0, onions(3), 1.0) == {}


class TestZipfProperties:
    @settings(max_examples=40)
    @given(
        count=st.integers(min_value=1, max_value=200),
        exponent=st.floats(min_value=0.0, max_value=3.0),
        offset=st.integers(min_value=0, max_value=50),
    )
    def test_weights_positive_and_monotone(self, count, exponent, offset):
        weights = zipf_weights(count, exponent, offset)
        assert len(weights) == count
        assert all(w > 0 for w in weights)
        assert all(a >= b - 1e-12 for a, b in zip(weights, weights[1:]))


class TestDiurnalProperties:
    @settings(max_examples=40)
    @given(
        ts=st.integers(min_value=0, max_value=10 * DAY),
        amplitude=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_weight_bounded(self, ts, amplitude):
        weight = diurnal_weight(ts, amplitude=amplitude)
        assert 1 - amplitude - 1e-9 <= weight <= 1 + amplitude + 1e-9

    def test_peak_at_peak_hour(self):
        assert diurnal_weight(20 * HOUR, peak_hour=20, amplitude=1.0) == pytest.approx(2.0)

    def test_trough_opposite_peak(self):
        assert diurnal_weight(8 * HOUR, peak_hour=20, amplitude=1.0) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_daily_period(self):
        for hour in range(24):
            assert diurnal_weight(hour * HOUR) == pytest.approx(
                diurnal_weight(hour * HOUR + 3 * DAY)
            )

    def test_mean_is_one(self):
        weights = [diurnal_weight(h * HOUR) for h in range(24)]
        assert sum(weights) / 24 == pytest.approx(1.0, abs=1e-9)

    def test_bad_amplitude_rejected(self):
        with pytest.raises(ConfigError):
            diurnal_weight(0, amplitude=2.0)


class TestPlanSliceProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        slices=st.integers(min_value=1, max_value=24),
        named=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_slicing_preserves_totals(self, slices, named, seed):
        targets = onions(3, seed=seed)
        spec = WorkloadSpec(
            window_start=0,
            window_end=DAY,
            named_rates={targets[0]: named},
            tail_onions=targets[1:],
            tail_total=37,
            ghost_onions=onions(2, seed=seed + 100),
            ghost_total=23,
        )
        workload = PopularityWorkload(spec, derive_rng(seed, "plan"))
        planned = workload.plan_slices(slices)
        assert planned.total_requests == named + 37 + 23
        for buckets in planned.buckets.values():
            assert len(buckets) == slices
            assert all(b >= 0 for b in buckets)

    def test_mismatched_slice_starts_rejected(self):
        targets = onions(1)
        spec = WorkloadSpec(
            window_start=0,
            window_end=DAY,
            named_rates={targets[0]: 10},
            diurnal_onions={targets[0]},
        )
        workload = PopularityWorkload(spec, derive_rng(0, "plan"))
        with pytest.raises(ConfigError):
            workload.plan_slices(4, slice_starts=[0, HOUR])
