"""Tests for repro.dirauth.voting — flag assignment policy."""

import random

from repro.crypto.keys import KeyPair
from repro.dirauth.voting import FlagPolicy
from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR


def make_relay(bandwidth=500, started_at=0, reachable=True, seed=0):
    return Relay(
        nickname="r",
        ip=1,
        or_port=9001,
        keypair=KeyPair.generate(random.Random(seed)),
        bandwidth=bandwidth,
        started_at=started_at,
        reachable=reachable,
    )


class TestFlagPolicy:
    def setup_method(self):
        self.policy = FlagPolicy()

    def test_unreachable_gets_nothing(self):
        relay = make_relay(reachable=False)
        assert self.policy.flags_for(relay, 100 * DAY) == RelayFlags.NONE

    def test_reachable_is_running_and_valid(self):
        flags = self.policy.flags_for(make_relay(), 1)
        assert flags & RelayFlags.RUNNING
        assert flags & RelayFlags.VALID

    def test_hsdir_exactly_at_25_hours(self):
        """The load-bearing threshold of the whole harvesting attack."""
        relay = make_relay()
        before = self.policy.flags_for(relay, 25 * HOUR - 1)
        after = self.policy.flags_for(relay, 25 * HOUR)
        assert not before & RelayFlags.HSDIR
        assert after & RelayFlags.HSDIR

    def test_hsdir_lost_after_restart(self):
        relay = make_relay()
        relay.set_reachable(False, 30 * HOUR)
        relay.set_reachable(True, 31 * HOUR)
        assert not self.policy.flags_for(relay, 40 * HOUR) & RelayFlags.HSDIR

    def test_fast_needs_bandwidth(self):
        slow = make_relay(bandwidth=50)
        fast = make_relay(bandwidth=200)
        assert not self.policy.flags_for(slow, DAY) & RelayFlags.FAST
        assert self.policy.flags_for(fast, DAY) & RelayFlags.FAST

    def test_stable_needs_uptime(self):
        relay = make_relay()
        assert not self.policy.flags_for(relay, 4 * DAY) & RelayFlags.STABLE
        assert self.policy.flags_for(relay, 6 * DAY) & RelayFlags.STABLE

    def test_guard_needs_uptime_and_bandwidth(self):
        seasoned_fast = make_relay(bandwidth=1000)
        seasoned_slow = make_relay(bandwidth=100)
        young_fast = make_relay(bandwidth=1000, started_at=7 * DAY)
        now = 9 * DAY
        assert self.policy.flags_for(seasoned_fast, now) & RelayFlags.GUARD
        assert not self.policy.flags_for(seasoned_slow, now) & RelayFlags.GUARD
        assert not self.policy.flags_for(young_fast, now) & RelayFlags.GUARD

    def test_custom_thresholds(self):
        policy = FlagPolicy(hsdir_min_uptime=HOUR)
        relay = make_relay()
        assert policy.flags_for(relay, 2 * HOUR) & RelayFlags.HSDIR
