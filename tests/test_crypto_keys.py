"""Tests for repro.crypto.keys."""

import hashlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import (
    KeyPair,
    fingerprint_hex,
    fingerprint_int,
)
from repro.crypto.ring import RING_SIZE, ring_distance
from repro.errors import CryptoError


class TestKeyPair:
    def test_fingerprint_is_sha1_of_der(self):
        keypair = KeyPair(public_der=b"hello")
        assert keypair.fingerprint == hashlib.sha1(b"hello").digest()

    def test_generate_is_deterministic_per_rng(self):
        a = KeyPair.generate(random.Random(5))
        b = KeyPair.generate(random.Random(5))
        assert a.fingerprint == b.fingerprint

    def test_generate_distinct_keys(self):
        rng = random.Random(5)
        assert KeyPair.generate(rng).fingerprint != KeyPair.generate(rng).fingerprint

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            KeyPair(public_der=b"")

    def test_hex_fingerprint_is_uppercase_40_chars(self):
        keypair = KeyPair.generate(random.Random(0))
        assert len(keypair.hex_fingerprint) == 40
        assert keypair.hex_fingerprint == keypair.hex_fingerprint.upper()

    def test_ring_position_matches_int_conversion(self):
        keypair = KeyPair.generate(random.Random(0))
        assert keypair.ring_position == int.from_bytes(keypair.fingerprint, "big")


class TestFingerprintHelpers:
    def test_hex_roundtrip(self):
        fp = hashlib.sha1(b"x").digest()
        assert bytes.fromhex(fingerprint_hex(fp)) == fp

    def test_int_is_big_endian(self):
        fp = bytes([1] + [0] * 19)
        assert fingerprint_int(fp) == 1 << 152

    def test_wrong_length_rejected(self):
        with pytest.raises(CryptoError):
            fingerprint_hex(b"short")

    def test_wrong_type_rejected(self):
        with pytest.raises(CryptoError):
            fingerprint_int("not-bytes")  # type: ignore[arg-type]


class TestTargetedGeneration:
    def test_grinding_lands_within_distance(self):
        rng = random.Random(1)
        target = 12345
        max_distance = RING_SIZE // 50  # generous window: fast to hit
        keypair = KeyPair.generate_with_fingerprint_near(rng, target, max_distance)
        distance = ring_distance(target, keypair.ring_position)
        assert 0 < distance <= max_distance

    def test_grinding_gives_up_eventually(self):
        rng = random.Random(1)
        with pytest.raises(CryptoError):
            KeyPair.generate_with_fingerprint_near(rng, 0, 1, attempts=10)

    def test_grinding_rejects_bad_distance(self):
        with pytest.raises(CryptoError):
            KeyPair.generate_with_fingerprint_near(random.Random(0), 0, 0)

    def test_forged_fingerprint_is_exact(self):
        fp = hashlib.sha1(b"target").digest()
        forged = KeyPair.with_forged_fingerprint(fp)
        assert forged.fingerprint == fp

    def test_forged_fingerprint_wrong_length_rejected(self):
        with pytest.raises(CryptoError):
            KeyPair.with_forged_fingerprint(b"short")

    @settings(max_examples=30)
    @given(
        target=st.integers(min_value=0, max_value=RING_SIZE - 1),
        log_distance=st.integers(min_value=1, max_value=150),
    )
    def test_forge_near_always_in_window(self, target, log_distance):
        max_distance = 1 << log_distance
        keypair = KeyPair.forge_near(random.Random(0), target, max_distance)
        distance = ring_distance(target, keypair.ring_position)
        assert 0 < distance <= max_distance

    def test_forge_near_rejects_huge_window(self):
        with pytest.raises(CryptoError):
            KeyPair.forge_near(random.Random(0), 0, RING_SIZE)
