"""Tests for repro.popularity.ranking."""

from repro.popularity.ranking import PopularityRanking


def make_ranking():
    counts = {"aa" * 8 + ".onion": 100, "bb" * 8 + ".onion": 300, "cc" * 8 + ".onion": 50}
    labels = {"bb" * 8 + ".onion": "Goldnet"}
    return PopularityRanking.from_counts(counts, labels)


class TestRanking:
    def test_descending_order(self):
        ranking = make_ranking()
        requests = [row.requests for row in ranking.rows]
        assert requests == sorted(requests, reverse=True)

    def test_ranks_are_one_based_sequential(self):
        assert [row.rank for row in make_ranking().rows] == [1, 2, 3]

    def test_rank_of(self):
        ranking = make_ranking()
        assert ranking.rank_of("bb" * 8 + ".onion") == 1
        assert ranking.rank_of("zz" * 8 + ".onion") is None

    def test_row_for(self):
        ranking = make_ranking()
        row = ranking.row_for("cc" * 8 + ".onion")
        assert row.requests == 50
        assert ranking.row_for("zz" * 8 + ".onion") is None

    def test_labels_applied(self):
        ranking = make_ranking()
        assert ranking.rows[0].description == "Goldnet"
        assert ranking.rows[1].description == "<n/a>"

    def test_rows_matching(self):
        assert len(make_ranking().rows_matching("Goldnet")) == 1

    def test_tie_break_deterministic(self):
        counts = {"aa" * 8 + ".onion": 5, "ab" * 8 + ".onion": 5}
        ranking = PopularityRanking.from_counts(counts)
        assert ranking.rows[0].onion < ranking.rows[1].onion

    def test_relabel(self):
        ranking = make_ranking()
        ranking.relabel({"aa" * 8 + ".onion": "Adult"})
        assert ranking.row_for("aa" * 8 + ".onion").description == "Adult"
        # Existing labels untouched.
        assert ranking.row_for("bb" * 8 + ".onion").description == "Goldnet"

    def test_top(self):
        assert len(make_ranking().top(2)) == 2

    def test_format_table_contains_header_and_rows(self):
        table = make_ranking().format_table()
        assert "RQSTS" in table
        assert "Goldnet" in table
