"""Tests for repro.detection.silkroad — the full case study (reduced scale)."""

import pytest

from repro.detection import (
    SilkroadStudy,
    SilkroadStudyConfig,
    TrackingAnalyzer,
)
from repro.errors import AttackError
from repro.sim.clock import parse_date


@pytest.fixture(scope="module")
def world():
    """A 20%-scale build of the full 33-month study (module-scoped: ~2 s)."""
    return SilkroadStudy(SilkroadStudyConfig(scale=0.2, seed=5)).build()


@pytest.fixture(scope="module")
def yearly(world):
    analyzer = TrackingAnalyzer(world.archive)
    return {
        "year1": analyzer.analyze(
            world.silkroad_onion, parse_date("2011-02-01"), parse_date("2011-12-31")
        ),
        "year2": analyzer.analyze(
            world.silkroad_onion, parse_date("2012-01-01"), parse_date("2012-12-31")
        ),
        "year3": analyzer.analyze(
            world.silkroad_onion, parse_date("2013-01-01"), parse_date("2013-10-31")
        ),
    }


class TestWorldConstruction:
    def test_archive_spans_the_study(self, world):
        first, last = world.archive.span
        assert first <= parse_date("2011-02-02")
        assert last >= parse_date("2013-10-29")

    def test_ring_grows(self, world):
        early = world.archive.at(parse_date("2011-03-01")).hsdir_count
        late = world.archive.at(parse_date("2013-10-01")).hsdir_count
        assert late > early * 1.8  # 757 → 1,862 in the paper (scaled)

    def test_ground_truth_entities_present(self, world):
        assert set(world.ground_truth) == {
            "year1-oddity",
            "our-trackers",
            "may-episode",
            "aug-episode",
        }
        assert len(world.ground_truth["aug-episode"]) == 6
        aug_ips = {ip for ip, _ in world.ground_truth["aug-episode"]}
        assert len(aug_ips) == 3

    def test_campaign_windows_recorded(self, world):
        may_first, may_last = world.campaigns["may-episode"]
        assert parse_date("2013-05-20") <= may_first <= parse_date("2013-05-25")
        assert may_last <= parse_date("2013-06-04")

    def test_config_validation(self):
        with pytest.raises(AttackError):
            SilkroadStudyConfig(scale=0)
        with pytest.raises(AttackError):
            SilkroadStudyConfig(scale=0.001)


class TestYearlyFindings:
    def test_year1_no_likely_trackers(self, yearly):
        assert yearly["year1"].likely_trackers() == {}

    def test_year1_oddity_visible_via_fresh_fingerprints(self, world, yearly):
        oddity_servers = world.ground_truth["year1-oddity"]
        flagged = set(yearly["year1"].servers_with_flag("fresh-fingerprint"))
        assert oddity_servers & flagged

    def test_year2_detects_our_trackers(self, world, yearly):
        likely = set(yearly["year2"].likely_trackers())
        assert world.ground_truth["our-trackers"] <= likely

    def test_year3_detects_may_episode(self, world, yearly):
        likely = set(yearly["year3"].likely_trackers())
        may = world.ground_truth["may-episode"]
        assert may & likely  # the team is convicted (≥1 server flagged)

    def test_may_episode_is_ratio_extreme(self, world, yearly):
        extreme = set(yearly["year3"].servers_with_flag("ratio-extreme"))
        assert world.ground_truth["may-episode"] & extreme

    def test_aug_takeover_found(self, world, yearly):
        takeovers = yearly["year3"].full_takeovers()
        assert len(takeovers) >= 1
        _, servers = takeovers[0]
        assert set(servers) <= world.ground_truth["aug-episode"]

    def test_no_honest_server_convicted(self, world, yearly):
        injected = set()
        for servers in world.ground_truth.values():
            injected |= servers
        for year in ("year1", "year2", "year3"):
            for server in yearly[year].likely_trackers():
                assert server in injected

    def test_shared_nicknames_within_episodes(self, world, yearly):
        report = yearly["year3"]
        may = world.ground_truth["may-episode"]
        nicknames = set()
        for server in may:
            if server in report.servers:
                nicknames |= report.servers[server].nicknames
        stems = {name.rstrip("0123456789") for name in nicknames}
        assert len(stems) == 1  # "servers that share the same name"
