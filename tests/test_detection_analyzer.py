"""Tests for repro.detection.analyzer on a hand-built archive."""

import random

import pytest

from repro.crypto.descriptor_id import descriptor_id
from repro.crypto.keys import KeyPair
from repro.crypto.onion import onion_address_from_key
from repro.crypto.ring import RING_SIZE
from repro.detection.analyzer import TrackingAnalyzer
from repro.detection.rules import DetectionThresholds
from repro.dirauth.archive import ConsensusArchive
from repro.dirauth.consensus import Consensus, ConsensusEntry
from repro.errors import ConsensusError
from repro.relay.flags import RelayFlags
from repro.sim.clock import DAY

TARGET = onion_address_from_key(b"the-target-service")
OFFSET = 0  # computed below per permanent id


def _offset():
    from repro.crypto.onion import permanent_id_from_onion

    return (permanent_id_from_onion(TARGET)[0] * DAY) // 256


def build_archive(periods=60, honest=80, tracker_periods=(), seed=0):
    """Daily consensuses; on tracker periods, a tracker server appears with
    a fresh ground fingerprint just past the replica-0 descriptor ID."""
    rng = random.Random(seed)
    offset = _offset()
    honest_entries = []
    for i in range(honest):
        keypair = KeyPair.generate(rng)
        honest_entries.append(
            ConsensusEntry(
                fingerprint=keypair.fingerprint,
                nickname=f"honest{i:03d}",
                ip=1000 + i,
                or_port=9001,
                bandwidth=500,
                flags=RelayFlags.RUNNING | RelayFlags.HSDIR,
            )
        )
    archive = ConsensusArchive()
    flags = RelayFlags.RUNNING | RelayFlags.HSDIR
    for period in range(periods):
        period_start = (period + 700_00) * DAY - offset
        entries = list(honest_entries)
        if period in tracker_periods:
            desc = descriptor_id(TARGET, period_start, 0)
            point = int.from_bytes(desc, "big")
            key = KeyPair.forge_near(rng, point, RING_SIZE // honest // 500)
            entries.append(
                ConsensusEntry(
                    fingerprint=key.fingerprint,
                    nickname="sneaky",
                    ip=1,
                    or_port=9001,
                    bandwidth=500,
                    flags=flags,
                )
            )
        entries.sort(key=lambda e: e.fingerprint)
        archive.append(Consensus(valid_after=period_start, entries=tuple(entries)))
    return archive


def window(periods):
    offset = _offset()
    start = 700_00 * DAY - offset
    return start, start + periods * DAY


class TestAnalyzer:
    def test_empty_archive_rejected(self):
        with pytest.raises(ConsensusError):
            TrackingAnalyzer(ConsensusArchive())

    def test_every_period_has_six_slots(self):
        archive = build_archive(periods=20)
        analyzer = TrackingAnalyzer(archive)
        start, end = window(20)
        report = analyzer.analyze(TARGET, start, end)
        total_events = sum(len(r.events) for r in report.servers.values())
        assert total_events == report.periods_analyzed * 6

    def test_honest_world_has_no_likely_trackers(self):
        archive = build_archive(periods=40)
        report = TrackingAnalyzer(archive).analyze(TARGET, *window(40))
        assert report.likely_trackers() == {}

    def test_tracker_convicted(self):
        tracker_periods = {5, 9, 13, 17}
        archive = build_archive(periods=30, tracker_periods=tracker_periods)
        report = TrackingAnalyzer(archive).analyze(TARGET, *window(30))
        likely = report.likely_trackers()
        assert (1, 9001) in likely  # the tracker's server key
        record = report.servers[(1, 9001)]
        assert record.max_ratio >= 100
        assert record.fresh_fingerprint_events >= 2
        assert len(record.fingerprints_used) == len(tracker_periods)

    def test_tracker_flags_include_fingerprint_signals(self):
        archive = build_archive(periods=30, tracker_periods={5, 9, 13, 17})
        report = TrackingAnalyzer(archive).analyze(TARGET, *window(30))
        flags = report.flags_for(report.servers[(1, 9001)])
        assert "ratio" in flags
        assert "fresh-fingerprint" in flags
        assert "fingerprint-churn" in flags

    def test_single_occurrence_not_convicted(self):
        """'statistically it is impossible to distinguish attempts to track
        a hidden service for one time period only from chance' — one event
        must not trip the fingerprint-change conjunction."""
        archive = build_archive(periods=30, tracker_periods={5})
        report = TrackingAnalyzer(archive).analyze(TARGET, *window(30))
        record = report.servers.get((1, 9001))
        assert record is not None
        flags = report.flags_for(record)
        assert "fresh-fingerprint" not in flags

    def test_mean_hsdir_count(self):
        archive = build_archive(periods=10, honest=50)
        report = TrackingAnalyzer(archive).analyze(TARGET, *window(10))
        assert report.mean_hsdir_count == pytest.approx(50, abs=1)

    def test_frequency_threshold_positive(self):
        archive = build_archive(periods=10)
        report = TrackingAnalyzer(archive).analyze(TARGET, *window(10))
        assert report.frequency_threshold > 0

    def test_consecutive_run_measured(self):
        archive = build_archive(periods=20, tracker_periods={4, 5, 6})
        report = TrackingAnalyzer(archive).analyze(TARGET, *window(20))
        assert report.servers[(1, 9001)].max_consecutive_periods >= 3

    def test_full_takeover_detection(self):
        """Six ground fingerprints from ≤3 IPs seize all six slots."""
        rng = random.Random(9)
        offset = _offset()
        honest_entries = []
        for i in range(60):
            keypair = KeyPair.generate(rng)
            honest_entries.append(
                ConsensusEntry(
                    fingerprint=keypair.fingerprint,
                    nickname=f"h{i}",
                    ip=2000 + i,
                    or_port=9001,
                    bandwidth=100,
                    flags=RelayFlags.RUNNING | RelayFlags.HSDIR,
                )
            )
        archive = ConsensusArchive()
        takeover_period = 7
        for period in range(15):
            period_start = (period + 800_00) * DAY - offset
            entries = list(honest_entries)
            if period == takeover_period:
                for replica in range(2):
                    desc = descriptor_id(TARGET, period_start, replica)
                    point = int.from_bytes(desc, "big")
                    gap = RING_SIZE // 60 // 20000
                    for slot in range(3):
                        key = KeyPair.forge_near(rng, (point + slot * 2 * gap) % RING_SIZE, gap)
                        entries.append(
                            ConsensusEntry(
                                fingerprint=key.fingerprint,
                                nickname=f"snoop{replica}{slot}",
                                ip=10 + slot,  # 3 IPs
                                or_port=9001 + replica,
                                bandwidth=100,
                                flags=RelayFlags.RUNNING | RelayFlags.HSDIR,
                            )
                        )
            entries.sort(key=lambda e: e.fingerprint)
            archive.append(Consensus(valid_after=period_start, entries=tuple(entries)))
        start = 800_00 * DAY - offset
        report = TrackingAnalyzer(archive).analyze(TARGET, start, start + 15 * DAY)
        takeovers = report.full_takeovers()
        assert len(takeovers) == 1
        _, servers = takeovers[0]
        assert {ip for ip, _ in servers} == {10, 11, 12}

    def test_custom_thresholds_respected(self):
        archive = build_archive(periods=30, tracker_periods={5, 9})
        lax = DetectionThresholds(ratio_suspicious=10**7, ratio_extreme=10**8)
        report = TrackingAnalyzer(archive, lax).analyze(TARGET, *window(30))
        assert report.likely_trackers() == {}
