"""The results layer: view builders over synthetic stage fixtures."""

from repro.experiments.pipeline import ClassificationOutcome
from repro.experiments.table2_popularity import Table2Result
from repro.net.endpoint import ConnectOutcome
from repro.popularity.ranking import PopularityRanking
from repro.scan import ScanResults
from repro.service import VIEW_KINDS, build_views, check_views, dossier_envelope
from repro.store import digest_of
from repro.worldbuild import EpochWorld

ALPHA = "a" * 16
BRAVO = "b" * 16
CHARLIE = "c" * 16


def make_scan():
    scan = ScanResults(scanned_onions=3)
    scan.descriptor_onions.update({ALPHA, BRAVO, CHARLIE})
    scan.record(ALPHA, 80, ConnectOutcome.OPEN)
    scan.record(ALPHA, 22, ConnectOutcome.OPEN)
    scan.record(BRAVO, 55080, ConnectOutcome.ABNORMAL_ERROR)
    scan.record(BRAVO, 4321, ConnectOutcome.OPEN)
    scan.record(CHARLIE, 443, ConnectOutcome.TIMEOUT)
    return scan


def make_classification():
    outcome = ClassificationOutcome()
    outcome.language_counts = {"english": 2, "german": 1}
    outcome.topic_counts = {"drugs": 2, "politics": 1}
    outcome.classified_pages = 3
    outcome.english_pages = 2
    outcome.torhost_default_count = 1
    outcome.page_topics = {(ALPHA, 80): "drugs", (BRAVO, 4321): "politics"}
    return outcome


def make_table2(counts=None):
    counts = counts if counts is not None else {ALPHA: 40, BRAVO: 15}
    ranking = PopularityRanking.from_counts(counts, {ALPHA: "market"})
    return Table2Result(
        ranking=ranking,
        total_requests_observed=sum(counts.values()),
        unique_ids_observed=len(counts),
    )


def make_world(epoch=0):
    return EpochWorld(epoch=epoch, seed=11, scale=0.02)


def views_for(epoch=0, counts=None, prev_views=None):
    return build_views(
        make_world(epoch),
        scan=make_scan(),
        classification=make_classification(),
        table2=make_table2(counts),
        prev_views=prev_views,
    )


class TestBuildViews:
    def test_materializes_every_kind_and_passes_strict_decode(self):
        views = views_for()
        assert set(views) == set(VIEW_KINDS)
        assert check_views(views) == views

    def test_ranking_rows_carry_table2_fields(self):
        body = views_for()["ranking"]["body"]
        assert body["rows"][0] == {
            "rank": 1,
            "requests": 40,
            "onion": ALPHA,
            "description": "market",
        }
        assert body["total_requests_observed"] == 55
        assert body["unique_ids_observed"] == 2

    def test_ports_view_bins_and_totals(self):
        body = views_for()["ports"]["body"]
        assert body["counts"] == {
            "22-ssh": 1,
            "55080-Skynet": 1,
            "80-http": 1,
            "other": 1,
        }
        assert body["unique_ports"] == 4
        assert body["total_open"] == 4
        assert body["scanned_onions"] == 3
        assert body["descriptor_onions"] == 3
        # CHARLIE only timed out, so it never became reachable.
        assert body["reachable_onions"] == 2

    def test_topics_view_sorts_counts_and_shares(self):
        body = views_for()["topics"]["body"]
        assert list(body["topic_counts"]) == ["drugs", "politics"]
        assert body["topic_shares_percent"]["politics"] == 100.0 / 3
        assert body["language_counts"] == {"english": 2, "german": 1}
        assert body["classified_pages"] == 3
        assert body["english_pages"] == 2
        assert body["torhost_default_count"] == 1

    def test_dossiers_join_scan_classifier_and_ranking(self):
        body = views_for()["dossiers"]["body"]
        assert body["total"] == 3
        assert list(body["onions"]) == sorted([ALPHA, BRAVO, CHARLIE])
        alpha = body["onions"][ALPHA]
        assert alpha == {
            "descriptor": True,
            "reachable": True,
            "open_ports": [22, 80],
            "topics": [[80, "drugs"]],
            "rank": 1,
            "requests": 40,
            "description": "market",
        }
        charlie = body["onions"][CHARLIE]
        assert charlie["reachable"] is False
        assert charlie["open_ports"] == []
        assert charlie["rank"] is None

    def test_digest_is_stable_across_rebuilds(self):
        first = views_for()
        second = views_for()
        for kind in VIEW_KINDS:
            assert digest_of(first[kind]) == digest_of(second[kind])


class TestDeltaView:
    def test_epoch_zero_delta_is_empty_with_null_prev(self):
        body = views_for()["delta"]["body"]
        assert body == {
            "prev_epoch": None,
            "new_onions": [],
            "vanished_onions": [],
            "rank_moves": {},
            "port_count_changes": {},
            "topic_count_changes": {},
        }

    def test_tracks_rank_moves_and_membership_changes(self):
        previous = views_for(epoch=0, counts={ALPHA: 40, BRAVO: 15})
        current = views_for(
            epoch=1, counts={BRAVO: 50, CHARLIE: 10}, prev_views=previous
        )
        body = current["delta"]["body"]
        assert body["prev_epoch"] == 0
        assert body["new_onions"] == [CHARLIE]
        assert body["vanished_onions"] == [ALPHA]
        assert body["rank_moves"] == {BRAVO: {"prev_rank": 2, "rank": 1}}
        # The synthetic scan/classification fixtures are identical across
        # the two epochs, so only the ranking moved.
        assert body["port_count_changes"] == {}
        assert body["topic_count_changes"] == {}


class TestDossierEnvelope:
    def test_wraps_single_onion_with_epoch_identity(self):
        views = views_for()
        envelope = dossier_envelope(views, ALPHA)
        assert envelope["kind"] == "dossier"
        assert envelope["onion"] == ALPHA
        assert envelope["epoch"] == 0
        assert envelope["body"]["rank"] == 1

    def test_unknown_onion_returns_none(self):
        assert dossier_envelope(views_for(), "z" * 16) is None
