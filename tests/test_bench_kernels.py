"""Byte-equivalence oracles for the four hot-path kernels.

The bench plane's perf numbers are only meaningful because every batch
kernel is *exactly* its scalar reference: same bytes out for every input,
with and without numpy, at every worker count.  These tests pin that
contract — property tests over adversarial inputs for the descriptor
window (including the rollover edge that ``time_period_boundaries``
defines), randomized equivalence sweeps for ring placement, consensus
admission, and the time-series pipeline, and a worker sweep through the
resolver's pmap fan-out.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.crypto.ring as ring_module
import repro.popularity.timeseries as timeseries_module
from repro.crypto.descriptor_id import (
    descriptor_ids_for_window,
    descriptor_ids_for_window_batch,
    descriptor_index_entries,
    descriptor_index_entries_batch,
    permanent_id_from_onion,
    time_period_boundaries,
)
from repro.crypto.onion import onion_address_from_key
from repro.crypto.ring import (
    FingerprintRing,
    responsible_positions,
    responsible_positions_batch,
)
from repro.dirauth.consensus import (
    ConsensusEntry,
    apply_per_ip_limit,
    apply_per_ip_limit_scalar,
)
from repro.hsdir.directory import HSDirServer, RequestRecord
from repro.popularity.resolver import DescriptorResolver
from repro.popularity.timeseries import (
    classify_services_by_shape,
    classify_services_by_shape_scalar,
    merge_series,
    merge_series_scalar,
    series_from_log,
    series_from_log_scalar,
)
from repro.relay.flags import RelayFlags
from repro.sim.clock import DAY, HOUR, parse_date

JAN28 = parse_date("2013-01-28")
FEB8 = parse_date("2013-02-08")


def make_onions(count, seed=0):
    rng = random.Random(seed)
    return [onion_address_from_key(rng.randbytes(140)) for _ in range(count)]


class TestDescriptorWindowEquivalence:
    @settings(max_examples=50)
    @given(
        st.integers(min_value=0, max_value=99),  # which onion
        st.integers(min_value=-3 * DAY, max_value=3 * DAY),  # start offset
        st.integers(min_value=0, max_value=14 * DAY),  # window length
    )
    def test_batch_equals_scalar(self, index, offset, length):
        """Property: the batched window derivation is the scalar one."""
        onions = make_onions(100, seed=7)
        onion = onions[index]
        start = JAN28 + offset
        end = start + length
        assert descriptor_ids_for_window_batch([onion], start, end) == [
            descriptor_ids_for_window(onion, start, end)
        ]

    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=49),
        st.integers(min_value=-2, max_value=2),  # seconds around the edge
    )
    def test_rollover_edge(self, index, jitter):
        """Property: windows pinned to a period boundary (±2 s) agree too.

        The rotation offset staggers each onion's period edges away from
        midnight; a window that starts or ends exactly on (or one second
        either side of) that service-specific boundary is where an
        off-by-one in the shared secret-part table would show.
        """
        onion = make_onions(50, seed=9)[index]
        boundary, next_boundary = time_period_boundaries(
            JAN28 + 5 * DAY, permanent_id_from_onion(onion)
        )
        for start, end in (
            (boundary + jitter, next_boundary + jitter),
            (boundary + jitter, boundary + jitter),  # zero-width window
            (boundary - DAY + jitter, next_boundary + DAY + jitter),
        ):
            if end < start:
                continue
            assert descriptor_ids_for_window_batch([onion], start, end) == [
                descriptor_ids_for_window(onion, start, end)
            ]

    def test_whole_database_with_validity(self):
        onions = make_onions(40, seed=3)
        batch = descriptor_index_entries_batch(onions, JAN28, FEB8)
        scalar = [
            descriptor_index_entries(onion, JAN28, FEB8) for onion in onions
        ]
        assert batch == scalar

    def test_cookie_threads_through(self):
        onions = make_onions(5, seed=4)
        batch = descriptor_index_entries_batch(
            onions, JAN28, FEB8, cookie=b"secret"
        )
        scalar = [
            descriptor_index_entries(onion, JAN28, FEB8, cookie=b"secret")
            for onion in onions
        ]
        assert batch == scalar
        assert batch != descriptor_index_entries_batch(onions, JAN28, FEB8)


class TestRingPlacementEquivalence:
    def _points(self, members, seed):
        rng = random.Random(seed)
        return sorted(
            {int.from_bytes(rng.randbytes(20), "big") for _ in range(members)}
        )

    def test_batch_equals_scalar_random(self):
        points = self._points(200, seed=1)
        rng = random.Random(2)
        queries = [int.from_bytes(rng.randbytes(20), "big") for _ in range(500)]
        # Exact members and near-misses exercise the prefix-tie refinement.
        queries += points[:20]
        queries += [p - 1 for p in points[:20]] + [p + 1 for p in points[:20]]
        assert responsible_positions_batch(queries, points) == [
            responsible_positions(q, points) for q in queries
        ]

    def test_shared_prefix_collisions(self):
        # Members and queries that agree on the top 64 bits force the exact
        # integer bisect to decide every placement.
        base = 0xDEADBEEF << 96
        points = sorted(base + low for low in (5, 9, 14, 200, 3000))
        queries = [base + low for low in range(0, 3100, 7)]
        assert responsible_positions_batch(queries, points) == [
            responsible_positions(q, points) for q in queries
        ]

    def test_numpy_fallback(self, monkeypatch):
        monkeypatch.setattr(ring_module, "_np", None)
        points = self._points(64, seed=3)
        rng = random.Random(4)
        queries = [int.from_bytes(rng.randbytes(20), "big") for _ in range(64)]
        assert responsible_positions_batch(queries, points) == [
            responsible_positions(q, points) for q in queries
        ]

    def test_ring_responsible_for_many(self):
        rng = random.Random(5)
        ring = FingerprintRing([rng.randbytes(20) for _ in range(50)])
        ids = [rng.randbytes(20) for _ in range(40)]
        assert ring.responsible_for_many(ids) == [
            ring.responsible_for(desc) for desc in ids
        ]


def _candidates(count, ips, seed):
    rng = random.Random(seed)
    pool = [rng.getrandbits(32) for _ in range(ips)]
    return [
        ConsensusEntry(
            fingerprint=rng.randbytes(20),
            nickname=f"relay{i}",
            ip=rng.choice(pool),
            or_port=9001,
            bandwidth=rng.randrange(1, 1000),
            flags=RelayFlags.RUNNING,
        )
        for i in range(count)
    ]


class TestConsensusEquivalence:
    @pytest.mark.parametrize("limit", [1, 2, 3])
    def test_batch_equals_scalar(self, limit):
        candidates = _candidates(300, ips=40, seed=6)
        assert apply_per_ip_limit(candidates, limit) == apply_per_ip_limit_scalar(
            candidates, limit
        )

    def test_bandwidth_ties(self):
        # Equal bandwidths force the fingerprint tiebreak in both paths.
        candidates = [
            entry._replace(bandwidth=100) for entry in _candidates(60, 5, seed=7)
        ]
        assert apply_per_ip_limit(candidates) == apply_per_ip_limit_scalar(
            candidates
        )

    def test_empty_and_singleton(self):
        assert apply_per_ip_limit([]) == []
        single = _candidates(1, 1, seed=8)
        assert apply_per_ip_limit(single) == single


def _loaded_servers(directories, services, per_service, seed):
    rng = random.Random(seed)
    servers = [HSDirServer(relay_id=i, keep_log=True) for i in range(directories)]
    ids = {f"svc{i}": rng.randbytes(20) for i in range(services)}
    for desc in ids.values():
        for _ in range(per_service):
            rng.choice(servers).request_log.append(
                RequestRecord(
                    time=JAN28 + rng.randrange(0, 4 * DAY),
                    descriptor_id=desc,
                    found=True,
                )
            )
    return servers, ids


class TestTimeseriesEquivalence:
    def test_series_and_merge_and_classify(self):
        servers, ids = _loaded_servers(3, 12, 120, seed=10)
        start, end = JAN28, JAN28 + 4 * DAY
        merged = {}
        for service, desc in ids.items():
            per_server_batch = [
                series_from_log(s, start, end, descriptor_ids=[desc])
                for s in servers
            ]
            per_server_scalar = [
                series_from_log_scalar(s, start, end, descriptor_ids=[desc])
                for s in servers
            ]
            assert per_server_batch == per_server_scalar
            merged[service] = merge_series(per_server_batch)
            assert merged[service] == merge_series_scalar(per_server_scalar)
        assert classify_services_by_shape(merged) == (
            classify_services_by_shape_scalar(merged)
        )

    def test_whole_log_series(self):
        servers, _ = _loaded_servers(2, 4, 80, seed=11)
        for server in servers:
            assert series_from_log(
                server, JAN28, JAN28 + 4 * DAY, bucket_seconds=HOUR
            ) == series_from_log_scalar(
                server, JAN28, JAN28 + 4 * DAY, bucket_seconds=HOUR
            )

    def test_numpy_fallback(self, monkeypatch):
        servers, ids = _loaded_servers(2, 6, 60, seed=12)
        start, end = JAN28, JAN28 + 2 * DAY
        with_numpy = {
            service: merge_series(
                [
                    series_from_log(s, start, end, descriptor_ids=[desc])
                    for s in servers
                ]
            )
            for service, desc in ids.items()
        }
        labels_numpy = classify_services_by_shape(with_numpy)
        monkeypatch.setattr(timeseries_module, "_np", None)
        without_numpy = {
            service: merge_series(
                [
                    series_from_log(s, start, end, descriptor_ids=[desc])
                    for s in servers
                ]
            )
            for service, desc in ids.items()
        }
        assert without_numpy == with_numpy
        assert classify_services_by_shape(without_numpy) == labels_numpy

    def test_classification_at_the_tolerance_boundary(self):
        # The machine/human call divides at cv == tolerance * floor; exact
        # integer moments keep scalar and batch on the same side even there.
        from repro.popularity.timeseries import RequestTimeSeries

        flat = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[100] * 24)
        spiky = RequestTimeSeries(
            start=0, bucket_seconds=HOUR, counts=[0, 400] * 12
        )
        quiet = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[1] * 24)
        services = {"flat": flat, "spiky": spiky, "quiet": quiet, "flat2": flat}
        assert classify_services_by_shape(services) == (
            classify_services_by_shape_scalar(services)
        ) == {
            "flat": "machine",
            "spiky": "human",
            "quiet": "low-volume",
            "flat2": "machine",
        }


class TestResolverWorkerEquivalence:
    def test_index_identical_at_any_worker_count(self):
        onions = make_onions(60, seed=13)
        baseline = DescriptorResolver(onions, JAN28, FEB8, workers=1)
        for workers in (2, 8):
            other = DescriptorResolver(onions, JAN28, FEB8, workers=workers)
            assert other._index == baseline._index
            assert other._validity == baseline._validity
            assert other.collisions == baseline.collisions
