"""Tests for repro.popularity.resolver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.descriptor_id import descriptor_ids_for_day
from repro.crypto.onion import onion_address_from_key
from repro.faults import RetryPolicy
from repro.popularity.resolver import DescriptorResolver, ResolutionResult
from repro.sim.clock import DAY, parse_date

JAN28 = parse_date("2013-01-28")
FEB8 = parse_date("2013-02-08")


def make_onions(count, seed=0):
    rng = random.Random(seed)
    return [onion_address_from_key(rng.randbytes(140)) for _ in range(count)]


class TestIndexConstruction:
    def test_index_size(self):
        onions = make_onions(10)
        resolver = DescriptorResolver(onions, JAN28, JAN28 + 2 * DAY)
        # 10 onions × (3 or 4 periods) × 2 replicas.
        assert resolver.database_size == 10
        assert 10 * 6 <= resolver.index_size <= 10 * 8

    def test_lookup_known_id(self):
        onions = make_onions(3)
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        desc_id = descriptor_ids_for_day(onions[0], JAN28 + 3 * DAY)[1]
        assert resolver.lookup(desc_id) == onions[0]

    def test_lookup_unknown_id(self):
        resolver = DescriptorResolver(make_onions(3), JAN28, FEB8)
        assert resolver.lookup(b"\x55" * 20) is None

    def test_healthy_window_has_no_collisions(self):
        resolver = DescriptorResolver(make_onions(50), JAN28, FEB8)
        assert resolver.collisions == {}
        assert resolver.collision_count == 0

    def test_collision_recorded_first_claimant_wins(self, monkeypatch):
        onions = make_onions(3)
        clash = b"\xaa" * 20

        def colliding_entries(batch, start, end, cookie=b""):
            # Every onion claims the same 20-byte ID (a forged database
            # would look exactly like this); only distinct IDs vary.
            return [
                [(clash, JAN28), (bytes([onions.index(onion)]) * 20, JAN28)]
                for onion in batch
            ]

        monkeypatch.setattr(
            "repro.popularity.resolver.descriptor_index_entries_batch",
            colliding_entries,
        )
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        # The first claimant (input order) keeps the slot; later claimants
        # are counted instead of silently overwriting it.
        assert resolver.lookup(clash) == onions[0]
        assert resolver.collisions == {clash: [onions[0], onions[1], onions[2]]}
        assert resolver.collision_count == 2
        assert resolver.index_size == 4  # clash + one distinct ID per onion

    def test_same_onion_replica_overlap_is_not_a_collision(self, monkeypatch):
        onions = make_onions(1)

        def duplicate_entries(batch, start, end, cookie=b""):
            # Both replicas of one onion landing on the same ID is merely
            # redundant, not a cross-service collision.
            return [
                [(b"\xbb" * 20, JAN28), (b"\xbb" * 20, JAN28)] for _ in batch
            ]

        monkeypatch.setattr(
            "repro.popularity.resolver.descriptor_index_entries_batch",
            duplicate_entries,
        )
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        assert resolver.collisions == {}
        assert resolver.collision_count == 0
        assert resolver.lookup(b"\xbb" * 20) == onions[0]


class TestResolve:
    def test_splits_resolved_and_phantom(self):
        onions = make_onions(4)
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        real_id = descriptor_ids_for_day(onions[1], JAN28 + DAY)[0]
        counts = {real_id: [7, 1], b"\x99" * 20: [0, 12]}
        result = resolver.resolve(counts)
        assert result.resolved_ids == 1
        assert result.unresolved_ids == 1
        assert result.requests_per_onion[onions[1]] == 8
        assert result.resolved_requests == 8
        assert result.unresolved_requests == 12
        assert result.total_unique_ids == 2
        assert result.phantom_request_fraction == 0.6

    def test_both_replicas_merge_to_one_onion(self):
        onions = make_onions(1)
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        ids = descriptor_ids_for_day(onions[0], JAN28)
        result = resolver.resolve({ids[0]: [3, 0], ids[1]: [4, 0]})
        assert result.resolved_onion_count == 1
        assert result.requests_per_onion[onions[0]] == 7

    def test_empty(self):
        resolver = DescriptorResolver(make_onions(1), JAN28, FEB8)
        result = resolver.resolve({})
        assert result.total_unique_ids == 0
        assert result.phantom_request_fraction == 0.0

    def test_resolve_normalized_applies_rate(self):
        onions = make_onions(1)
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        desc_id = descriptor_ids_for_day(onions[0], JAN28)[0]
        result = resolver.resolve_normalized(
            {desc_id: [5, 0]}, lambda d, f, m, validity: (f + m) * 10.0
        )
        assert result.requests_per_onion[onions[0]] == 50

    def test_resolver_provides_validity_to_normalizer(self):
        onions = make_onions(1)
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        desc_id = descriptor_ids_for_day(onions[0], JAN28 + DAY)[0]
        seen = {}

        def normalizer(d, f, m, validity):
            seen["validity"] = validity
            return float(f + m)

        resolver.resolve_normalized({desc_id: [1, 0]}, normalizer)
        start, end = seen["validity"]
        assert end - start == DAY
        assert start <= JAN28 + DAY < end
        assert resolver.validity_of(desc_id) == (start, end)

    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=30),  # which onion
        st.integers(min_value=0, max_value=11),  # day offset inside window
        st.integers(min_value=0, max_value=1),  # replica
    )
    def test_resolution_inverts_publication(self, index, day, replica):
        """Property: any descriptor ID a known onion publishes inside the
        window resolves back to that onion — clock skew of ±days included."""
        onions = make_onions(31, seed=4)
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        onion = onions[index]
        desc_id = descriptor_ids_for_day(onion, JAN28 + day * DAY)[replica]
        result = resolver.resolve({desc_id: [1, 0]})
        assert result.requests_per_onion == {onion: 1}

    def test_outside_window_does_not_resolve(self):
        onions = make_onions(2, seed=5)
        resolver = DescriptorResolver(onions, JAN28, FEB8)
        stale = descriptor_ids_for_day(onions[0], JAN28 - 40 * DAY)[0]
        result = resolver.resolve({stale: [0, 5]})
        assert result.resolved_ids == 0
        assert result.unresolved_requests == 5


class FakeDescriptorTransport:
    """Answers has_descriptor from per-onion scripted sequences."""

    def __init__(self, answers):
        self.answers = {onion: list(seq) for onion, seq in answers.items()}
        self.fetches = 0

    def has_descriptor(self, onion, now):
        self.fetches += 1
        seq = self.answers.get(onion, [False])
        return seq.pop(0) if len(seq) > 1 else seq[0]


class TestVerifyResolution:
    ONIONS = ["a" * 16 + ".onion", "b" * 16 + ".onion", "c" * 16 + ".onion"]

    def _resolution(self):
        return ResolutionResult(
            requests_per_onion={onion: 1 for onion in self.ONIONS}
        )

    def test_without_retries_every_flap_counts_as_lost(self):
        transport = FakeDescriptorTransport(
            {
                self.ONIONS[0]: [True],
                self.ONIONS[1]: [False, True],  # flap: second fetch never happens
                self.ONIONS[2]: [False],
            }
        )
        resolver = DescriptorResolver(make_onions(1), JAN28, FEB8)
        verification = resolver.verify_resolution(
            self._resolution(), transport, JAN28
        )
        assert verification.checked == 3
        assert verification.still_resolvable == 1
        assert verification.lost == 2
        assert verification.attempts == 3
        assert verification.failures.transient_recovered == 0
        assert verification.lost_fraction == pytest.approx(2 / 3)

    def test_retries_recover_the_flap(self):
        transport = FakeDescriptorTransport(
            {
                self.ONIONS[0]: [True],
                self.ONIONS[1]: [False, True],
                self.ONIONS[2]: [False],
            }
        )
        resolver = DescriptorResolver(make_onions(1), JAN28, FEB8)
        verification = resolver.verify_resolution(
            self._resolution(),
            transport,
            JAN28,
            retry_policy=RetryPolicy(descriptor_refetches=1, seed=3),
        )
        assert verification.still_resolvable == 2
        assert verification.lost == 1
        assert verification.failures.transient_recovered == 1
        assert verification.failures.permanent == 1
        # a: 1 fetch; b: 2 fetches; c: 1 + 1 re-fetch.
        assert verification.attempts == 5

    def test_worker_count_does_not_change_the_verdict(self):
        resolver = DescriptorResolver(make_onions(1), JAN28, FEB8)
        runs = []
        for workers in (1, 2, 8):
            transport = FakeDescriptorTransport(
                {self.ONIONS[0]: [True], self.ONIONS[2]: [False]}
            )
            runs.append(
                resolver.verify_resolution(
                    self._resolution(), transport, JAN28, workers=workers
                )
            )
        baseline = runs[0]
        for other in runs[1:]:
            assert other == baseline
