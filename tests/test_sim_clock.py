"""Tests for repro.sim.clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import (
    DAY,
    HOUR,
    MINUTE,
    SimClock,
    day_number,
    format_date,
    parse_date,
)


class TestParseDate:
    def test_plain_date(self):
        assert parse_date("1970-01-01") == 0

    def test_known_anchor(self):
        # The paper's harvest date.
        assert parse_date("2013-02-04") == 1359936000

    def test_with_time(self):
        assert parse_date("1970-01-01 01:00:00") == HOUR

    def test_with_minutes_only(self):
        assert parse_date("1970-01-02 00:30") == DAY + 30 * MINUTE

    def test_rejects_garbage(self):
        with pytest.raises(SimulationError):
            parse_date("not-a-date")

    def test_rejects_partial(self):
        with pytest.raises(SimulationError):
            parse_date("2013-02")

    def test_roundtrip(self):
        ts = parse_date("2013-10-31")
        assert parse_date(format_date(ts)) == ts

    def test_roundtrip_with_time(self):
        ts = parse_date("2013-10-31 13:37:11")
        assert parse_date(format_date(ts, with_time=True)) == ts


class TestFormatDate:
    def test_epoch(self):
        assert format_date(0) == "1970-01-01"

    def test_with_time(self):
        assert format_date(HOUR + MINUTE, with_time=True) == "1970-01-01 01:01:00"


class TestDayNumber:
    def test_epoch_day(self):
        assert day_number(0) == 0

    def test_one_second_before_midnight(self):
        assert day_number(DAY - 1) == 0

    def test_midnight(self):
        assert day_number(DAY) == 1


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(123).now == 123

    def test_advance_to(self):
        clock = SimClock(10)
        clock.advance_to(50)
        assert clock.now == 50

    def test_advance_to_same_time_ok(self):
        clock = SimClock(10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_cannot_rewind(self):
        clock = SimClock(10)
        with pytest.raises(SimulationError):
            clock.advance_to(9)

    def test_advance_by(self):
        clock = SimClock(0)
        clock.advance_by(HOUR)
        assert clock.now == HOUR

    def test_advance_by_zero(self):
        clock = SimClock(5)
        clock.advance_by(0)
        assert clock.now == 5

    def test_advance_by_negative_rejected(self):
        clock = SimClock(5)
        with pytest.raises(SimulationError):
            clock.advance_by(-1)

    def test_repr_shows_date(self):
        assert "1970-01-01" in repr(SimClock(0))
