"""Ledger-aware retention: ``repro store gc --keep-epochs N``."""

import pytest

from repro.cli import main as cli_main
from repro.errors import StoreError
from repro.store import ArtifactStore, Stage
from repro.store.admin import iter_index, retain_recent_runs


def make_stage(name):
    return Stage(
        name=name,
        modules=("repro.store.cas",),
        encode=lambda value: {"value": value},
        decode=lambda data: data["value"],
    )


def seed_epoch_store(root, epochs=3):
    """A store where each epoch ledgers one run under a pinned id.

    Every epoch misses its own ``sweep`` artifact (epoch-keyed), while
    the epoch-independent ``world`` artifact misses once and hits in
    every later epoch — the shape a real service store has.
    """
    for epoch in range(epochs):
        store = ArtifactStore(root, run_id=f"epoch-{epoch:06d}")
        store.run(make_stage("world"), {"shared": True}, lambda: {"relays": 9})
        store.run(
            make_stage("sweep"),
            {"epoch": epoch},
            lambda: {"observed": [epoch] * 3},
        )


def index_keys(root):
    store = ArtifactStore(root)
    return {(entry.stage, entry.key_digest) for entry in iter_index(store)}


class TestRetainRecentRuns:
    def test_keeps_only_the_newest_runs_artifacts(self, tmp_path):
        root = tmp_path / "store"
        seed_epoch_store(str(root), epochs=3)
        before = index_keys(str(root))
        assert len(before) == 4  # one shared world + three epoch sweeps

        store = ArtifactStore(str(root))
        index_removed, objects_removed, bytes_freed = retain_recent_runs(
            store, keep=1
        )

        assert index_removed == 2  # the two older epochs' sweeps
        assert objects_removed == 2
        assert bytes_freed > 0
        after = index_keys(str(root))
        assert len(after) == 2
        assert {stage for stage, _ in after} == {"world", "sweep"}

    def test_kept_runs_hits_protect_shared_artifacts(self, tmp_path):
        root = tmp_path / "store"
        seed_epoch_store(str(root), epochs=3)
        store = ArtifactStore(str(root))
        retain_recent_runs(store, keep=1)

        # The kept epoch only ever *hit* the shared world artifact, yet
        # retention must keep it: a warm epoch still depends on it.
        warm = ArtifactStore(str(root), run_id="epoch-000003")
        calls = []
        warm.run(
            make_stage("world"),
            {"shared": True},
            lambda: calls.append("miss") or {"relays": 9},
        )
        assert calls == []  # still a hit, nothing recomputed

    def test_keep_wider_than_history_removes_nothing(self, tmp_path):
        root = tmp_path / "store"
        seed_epoch_store(str(root), epochs=2)
        store = ArtifactStore(str(root))
        index_removed, objects_removed, _freed = retain_recent_runs(
            store, keep=10
        )
        assert index_removed == 0
        assert objects_removed == 0

    def test_keep_below_one_is_a_store_error(self, tmp_path):
        root = tmp_path / "store"
        seed_epoch_store(str(root), epochs=1)
        with pytest.raises(StoreError, match="--keep-epochs must be >= 1"):
            retain_recent_runs(ArtifactStore(str(root)), keep=0)


class TestCli:
    def test_gc_keep_epochs_prints_the_retention_summary(
        self, tmp_path, capsys
    ):
        root = tmp_path / "store"
        seed_epoch_store(str(root), epochs=3)

        exit_code = cli_main(
            ["store", "gc", "--keep-epochs", "2", "--store", str(root)]
        )

        assert exit_code == 0
        out = capsys.readouterr().out
        assert "retired 1 index entr(ies)" in out
        assert "kept newest 2 run(s)" in out
        assert len(index_keys(str(root))) == 3

    def test_gc_keep_epochs_rejects_zero_with_exit_2(self, tmp_path, capsys):
        root = tmp_path / "store"
        seed_epoch_store(str(root), epochs=1)

        exit_code = cli_main(
            ["store", "gc", "--keep-epochs", "0", "--store", str(root)]
        )

        assert exit_code == 2
        assert "--keep-epochs must be >= 1" in capsys.readouterr().err

    def test_plain_gc_is_unchanged_by_the_new_flag(self, tmp_path, capsys):
        root = tmp_path / "store"
        seed_epoch_store(str(root), epochs=2)

        exit_code = cli_main(["store", "gc", "--store", str(root)])

        assert exit_code == 0
        assert "[gc: removed 0 object(s), freed 0 bytes]" in (
            capsys.readouterr().out
        )
