"""Shared fixtures.

Heavy artifacts (trained classifiers, generated worlds, pipeline runs) are
session-scoped: they are deterministic, so sharing them across tests changes
nothing but the wall-clock.
"""

from __future__ import annotations

import pytest

from repro.classify import build_language_detector, build_topic_classifier
from repro.experiments.pipeline import MeasurementPipeline
from repro.population import generate_population
from repro.sim.clock import DAY, SimClock, parse_date
from repro.sim.rng import derive_rng
from repro.crypto.keys import KeyPair
from repro.net.address import AddressPool
from repro.relay.relay import Relay
from repro.tornet import TorNetwork

TEST_SCALE = 0.04


@pytest.fixture(scope="session")
def small_population():
    """A ~1,600-onion world calibrated like the paper's, at 4% scale."""
    return generate_population(seed=11, scale=TEST_SCALE)


@pytest.fixture(scope="session")
def small_pipeline(small_population):
    """Scan+crawl+classify pipeline over the small world (lazy stages).

    Pinned to the fault-free profile: the tests built on this fixture
    check measurement tolerances, and must mean the same thing when CI
    exports ``REPRO_FAULTS``.  Faulted behaviour has its own fixtures,
    goldens and equivalence tests.
    """
    return MeasurementPipeline(
        seed=11, population=small_population, fault_profile="none"
    )


@pytest.fixture(scope="session")
def language_detector():
    """The shipped language model (trained once per session)."""
    return build_language_detector()


@pytest.fixture(scope="session")
def topic_classifier():
    """The shipped topic model (trained once per session)."""
    return build_topic_classifier()


def make_network(
    seed: int,
    relay_count: int = 150,
    start=parse_date("2013-01-01"),
    keep_archive: bool = False,
):
    """A fresh honest network with ``relay_count`` seasoned relays."""
    rng = derive_rng(seed, "test-net")
    pool = AddressPool(derive_rng(seed, "test-ips"))
    network = TorNetwork(clock=SimClock(start), keep_archive=keep_archive)
    for index in range(relay_count):
        network.add_relay(
            Relay(
                nickname=f"relay{index:04d}",
                ip=pool.allocate(),
                or_port=9001,
                keypair=KeyPair.generate(rng),
                bandwidth=rng.randint(100, 5000),
                started_at=start - rng.randint(5, 400) * DAY,
            )
        )
    network.rebuild_consensus(start)
    return network, pool


@pytest.fixture()
def network():
    """A fresh 150-relay network (function scope: tests mutate it)."""
    net, _pool = make_network(seed=21)
    return net


@pytest.fixture()
def network_and_pool():
    """Network plus its address pool (for tests that add relays)."""
    return make_network(seed=22)


#: The service-plane test configuration: three supervised epochs at 2%
#: scale under the moderate crash schedule.  Faults and workers stay
#: unpinned so the CI matrix (REPRO_FAULTS / REPRO_WORKERS) flows
#: through the controller exactly as it does through the batch CLI.
SERVICE_SEED = 11
SERVICE_SCALE = 0.02
SERVICE_EPOCHS = 3
SERVICE_SWEEP_HOURS = 4


def make_service_config(**overrides):
    """The shared service config, with per-test overrides."""
    from repro.service import ServiceConfig

    settings = dict(
        seed=SERVICE_SEED,
        scale=SERVICE_SCALE,
        epochs=SERVICE_EPOCHS,
        sweep_hours=SERVICE_SWEEP_HOURS,
        crash_profile="moderate",
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


@pytest.fixture(scope="session")
def service_store_root(tmp_path_factory):
    """The session's service store directory (shared across epochs)."""
    return str(tmp_path_factory.mktemp("service-store"))


@pytest.fixture(scope="session")
def service_controller(service_store_root):
    """Three completed supervised epochs under the moderate crash plan."""
    from repro.service import EpochController

    controller = EpochController(make_service_config(), service_store_root)
    controller.run()
    return controller
