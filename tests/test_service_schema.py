"""The service envelope schema: strict loaders, versioning, error frames."""

import pytest

from repro.errors import ServiceSchemaError
from repro.service import (
    SCHEMA_VERSION,
    VIEW_KINDS,
    check_view,
    check_views,
    error_envelope,
    view_envelope,
)


def _envelope(kind="ranking", **overrides):
    envelope = view_envelope(kind, epoch=2, seed=11, scale=0.02, body={"rows": []})
    envelope.update(overrides)
    return envelope


class TestViewEnvelope:
    def test_wraps_body_with_schema_stamp(self):
        envelope = _envelope()
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["kind"] == "ranking"
        assert envelope["epoch"] == 2
        assert envelope["body"] == {"rows": []}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ServiceSchemaError, match="unknown view kind"):
            view_envelope("bogus", epoch=0, seed=0, scale=1.0, body={})

    def test_round_trips_through_check_view(self):
        envelope = _envelope()
        assert check_view(envelope) == envelope

    def test_check_view_rejects_wrong_version(self):
        with pytest.raises(ServiceSchemaError, match="schema version"):
            check_view(_envelope(schema=SCHEMA_VERSION + 1))

    def test_check_view_rejects_missing_field(self):
        envelope = _envelope()
        del envelope["epoch"]
        with pytest.raises(ServiceSchemaError, match="missing field 'epoch'"):
            check_view(envelope)

    def test_check_view_rejects_wrong_type(self):
        with pytest.raises(ServiceSchemaError, match="field 'body' has type"):
            check_view(_envelope(body=[1, 2]))

    def test_check_view_rejects_bool_as_int(self):
        with pytest.raises(ServiceSchemaError, match="field 'epoch' has type"):
            check_view(_envelope(epoch=True))

    def test_check_view_rejects_non_mapping(self):
        with pytest.raises(ServiceSchemaError, match="expected an object"):
            check_view([])


class TestCheckViews:
    def _views(self):
        return {kind: _envelope(kind) for kind in VIEW_KINDS}

    def test_accepts_full_view_set(self):
        views = self._views()
        assert check_views(views) == views

    def test_rejects_missing_kind(self):
        views = self._views()
        del views["delta"]
        with pytest.raises(ServiceSchemaError, match="missing field 'delta'"):
            check_views(views)

    def test_rejects_mislabelled_entry(self):
        views = self._views()
        views["ports"] = _envelope("topics")
        with pytest.raises(ServiceSchemaError, match="holds a 'topics' view"):
            check_views(views)


class TestErrorEnvelope:
    def test_carries_status_type_and_message(self):
        envelope = error_envelope(404, ServiceSchemaError("no such epoch"))
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["kind"] == "error"
        assert envelope["status"] == 404
        assert envelope["error"] == {
            "type": "ServiceSchemaError",
            "message": "no such epoch",
        }
