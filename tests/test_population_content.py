"""Tests for repro.population.content — page synthesis."""

import pytest

from repro.errors import PopulationError
from repro.population.content import (
    is_error_page,
    ssh_banner,
    strip_html,
    synth_error_page,
    synth_language_page,
    synth_short_page,
    synth_topic_page,
    wrap_html,
)
from repro.sim.rng import derive_rng


class TestTopicPages:
    def test_word_count_respected(self):
        text = synth_topic_page("drugs", derive_rng(1, "t"), word_count=50)
        assert len(text.split()) == 50

    def test_topical_words_present(self):
        from repro.population.corpus import TOPIC_VOCABULARY

        text = synth_topic_page("drugs", derive_rng(2, "t"), word_count=200)
        topical = set(TOPIC_VOCABULARY["drugs"])
        hits = sum(1 for word in text.split() if word in topical)
        assert hits > 40  # ~50% topical by construction

    def test_unknown_topic_rejected(self):
        with pytest.raises(PopulationError):
            synth_topic_page("astrology", derive_rng(0, "t"))

    def test_zero_words_rejected(self):
        with pytest.raises(PopulationError):
            synth_topic_page("drugs", derive_rng(0, "t"), word_count=0)


class TestLanguagePages:
    def test_word_count(self):
        text = synth_language_page("de", derive_rng(1, "l"), word_count=80)
        assert len(text.split()) == 80

    def test_unknown_language_rejected(self):
        with pytest.raises(PopulationError):
            synth_language_page("xx", derive_rng(0, "l"))

    def test_native_words_dominate(self):
        from repro.population.corpus import LANGUAGE_VOCABULARY

        text = synth_language_page("ru", derive_rng(2, "l"), word_count=200)
        native = set(LANGUAGE_VOCABULARY["ru"])
        hits = sum(1 for word in text.split() if word in native)
        assert hits > 120


class TestShortAndErrorPages:
    def test_short_page_below_cutoff(self):
        for i in range(20):
            text = synth_short_page(derive_rng(i, "s"))
            assert len(text.split()) < 20

    def test_error_page_above_cutoff(self):
        text = synth_error_page(derive_rng(1, "e"))
        assert len(text.split()) >= 20

    def test_error_page_detected(self):
        assert is_error_page(synth_error_page(derive_rng(2, "e")))

    def test_normal_text_not_error(self):
        assert not is_error_page("welcome to my onion site about chess")

    def test_503_detected(self):
        assert is_error_page("Error 503 Service Unavailable")


class TestHtmlHelpers:
    def test_wrap_and_strip_roundtrip(self):
        body = "hello onion world"
        assert strip_html(wrap_html("t", body)).split() == ["t"] + body.split()

    def test_strip_removes_tags(self):
        assert "script" not in strip_html("<script>alert(1)</script>safe")

    def test_ssh_banner_is_ssh(self):
        assert ssh_banner(derive_rng(1, "b")).startswith("SSH-2.0-")
