"""Tests for repro.dirauth.council — multi-authority voting."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.dirauth.council import AuthorityCouncil, DirectoryAuthority
from repro.dirauth.voting import FlagPolicy
from repro.errors import ConsensusError
from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay
from repro.sim.clock import DAY
from repro.sim.rng import derive_rng


def make_relay(index, bandwidth=1000, started_at=0, ip=None):
    return Relay(
        nickname=f"r{index}",
        ip=ip if ip is not None else 10_000 + index,
        or_port=9001,
        keypair=KeyPair.generate(random.Random(index)),
        bandwidth=bandwidth,
        started_at=started_at,
    )


def make_council(**kwargs):
    defaults = dict(rng=derive_rng(1, "council"))
    defaults.update(kwargs)
    return AuthorityCouncil(**defaults)


class TestDirectoryAuthority:
    def test_vote_covers_reachable_relays(self):
        authority = DirectoryAuthority(
            0, FlagPolicy(), derive_rng(2, "a"), misreachability=0.0
        )
        relays = [make_relay(i) for i in range(5)]
        relays[0].set_reachable(False, 0)
        vote = authority.vote(relays, DAY)
        assert set(vote.opinions) == {r.relay_id for r in relays[1:]}

    def test_bandwidth_noise_applied(self):
        authority = DirectoryAuthority(
            0, FlagPolicy(), derive_rng(3, "a"), misreachability=0.0,
            bandwidth_noise=0.2,
        )
        relay = make_relay(0, bandwidth=1000)
        measurements = {
            authority.vote([relay], DAY).opinions[relay.relay_id][1]
            for _ in range(10)
        }
        assert len(measurements) > 1  # scanner is noisy

    def test_excessive_misreachability_rejected(self):
        with pytest.raises(ConsensusError):
            DirectoryAuthority(0, FlagPolicy(), derive_rng(4, "a"), misreachability=0.6)


class TestAuthorityCouncil:
    def test_majority_masks_one_faulty_view(self):
        """A relay one authority fails to reach is still listed (the entire
        point of voting)."""
        council = make_council(misreachability=0.0)
        council.authorities[0].misreachability = 1.0  # authority 0 is blind
        relays = [make_relay(i) for i in range(10)]
        council.register_all(relays)
        consensus = council.build_consensus(2 * DAY)
        assert len(consensus) == 10

    def test_minority_cannot_list_a_dead_relay(self):
        council = make_council(misreachability=0.0)
        relays = [make_relay(i) for i in range(3)]
        relays[1].set_reachable(False, 0)
        council.register_all(relays)
        consensus = council.build_consensus(DAY)
        assert relays[1].fingerprint not in consensus

    def test_flag_majority(self):
        council = make_council(misreachability=0.0)
        seasoned = make_relay(0, started_at=0)
        young = make_relay(1, started_at=2 * DAY - 3600)
        council.register_all([seasoned, young])
        consensus = council.build_consensus(2 * DAY)
        assert consensus.entry_for(seasoned.fingerprint).has(RelayFlags.HSDIR)
        assert not consensus.entry_for(young.fingerprint).has(RelayFlags.HSDIR)

    def test_median_bandwidth(self):
        council = make_council(misreachability=0.0, bandwidth_noise=0.0)
        relay = make_relay(0, bandwidth=1234)
        council.register(relay)
        consensus = council.build_consensus(DAY)
        assert consensus.entry_for(relay.fingerprint).bandwidth == 1234

    def test_per_ip_limit_applies(self):
        council = make_council(misreachability=0.0)
        relays = [make_relay(i, ip=42, bandwidth=100 + i) for i in range(5)]
        council.register_all(relays)
        consensus = council.build_consensus(DAY)
        assert len(consensus) == 2

    def test_noise_rarely_delists_anyone(self):
        """With 9 authorities at 10% per-authority failure, losing the
        majority (≥5 simultaneous failures) is a ≈ 1e-4 event per relay."""
        council = make_council(misreachability=0.10)
        relays = [make_relay(i) for i in range(50)]
        council.register_all(relays)
        listed = sum(
            len(council.build_consensus(DAY + hour)) for hour in range(10)
        )
        assert listed >= 498  # ≤ 2 misses in 500 listings

    def test_zero_authorities_rejected(self):
        with pytest.raises(ConsensusError):
            AuthorityCouncil(authority_count=0)

    def test_double_register_rejected(self):
        council = make_council()
        relay = make_relay(0)
        council.register(relay)
        with pytest.raises(ConsensusError):
            council.register(relay)


class TestCouncilWithNetwork:
    def test_tornet_accepts_a_council(self):
        from repro.net.address import AddressPool
        from repro.sim.clock import SimClock
        from repro.tornet import TorNetwork

        council = make_council(misreachability=0.01)
        network = TorNetwork(clock=SimClock(0), authority=council, keep_archive=False)
        pool = AddressPool(derive_rng(5, "ips"))
        rng = derive_rng(5, "relays")
        for index in range(60):
            network.add_relay(
                Relay(
                    nickname=f"v{index}",
                    ip=pool.allocate(),
                    or_port=9001,
                    keypair=KeyPair.generate(rng),
                    bandwidth=rng.randint(100, 3000),
                    started_at=0,
                )
            )
        consensus = network.rebuild_consensus(10 * DAY)
        assert len(consensus) >= 58
        assert consensus.hsdir_count >= 55

        # Full protocol flow still works on top of the voted consensus.
        from repro.hs.service import HiddenService

        service = HiddenService(keypair=KeyPair.generate(rng), online_from=0)
        assert network.publish_service(service) == 6
        assert network.fetch_onion(service.onion, rng) is not None
