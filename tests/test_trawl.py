"""Tests for repro.trawl — shadow fleet, coverage math, the attack."""

import pytest

from repro.errors import AttackError
from repro.hs.publisher import PublishScheduler
from repro.hsdir.directory import HSDirServer
from repro.population import generate_population
from repro.relay.flags import RelayFlags
from repro.sim.clock import HOUR
from repro.sim.rng import derive_rng
from repro.trawl import (
    RingHistory,
    ShadowFleet,
    TrawlAttack,
    TrawlConfig,
    expected_capture_probability,
    naive_ip_requirement,
)
from repro.trawl.harvest import HarvestResult
from tests.conftest import make_network


class TestCoverageMath:
    def test_paper_footnote_3(self):
        """'an attacker would need to own more than 300 IP addresses' at the
        2013 ring size (~1,200 HSDirs)."""
        assert naive_ip_requirement(1200) == 300

    def test_scales_with_ring(self):
        assert naive_ip_requirement(2400) == 600

    def test_zero_ring(self):
        assert naive_ip_requirement(0) == 0

    def test_bad_parameters(self):
        with pytest.raises(AttackError):
            naive_ip_requirement(-1)
        with pytest.raises(AttackError):
            naive_ip_requirement(100, relays_per_ip=0)

    def test_capture_probability_monotone_in_waves(self):
        p1 = expected_capture_probability(100, 1000, waves=1)
        p4 = expected_capture_probability(100, 1000, waves=4)
        assert 0 < p1 < p4 < 1

    def test_capture_probability_saturates(self):
        assert expected_capture_probability(1000, 1000, waves=1) == 1.0

    def test_capture_probability_empty_ring_rejected(self):
        with pytest.raises(AttackError):
            expected_capture_probability(1, 0)


class TestShadowFleet:
    def test_fleet_dimensions(self, network_and_pool):
        network, pool = network_and_pool
        fleet = ShadowFleet(network, ip_count=4, relays_per_ip=6,
                            rng=derive_rng(1, "f"), address_pool=pool)
        assert len(fleet.all_relays) == 24
        assert len(fleet.by_ip) == 4

    def test_only_two_per_ip_listed(self, network_and_pool):
        network, pool = network_and_pool
        fleet = ShadowFleet(network, ip_count=4, relays_per_ip=6,
                            rng=derive_rng(2, "f"), address_pool=pool)
        network.clock.advance_by(HOUR)
        network.rebuild_consensus()
        assert len(fleet.listed_relays()) == 8

    def test_rotation_brings_shadows_in(self, network_and_pool):
        network, pool = network_and_pool
        fleet = ShadowFleet(network, ip_count=2, relays_per_ip=6,
                            rng=derive_rng(3, "f"), address_pool=pool)
        network.clock.advance_by(HOUR)
        network.rebuild_consensus()
        first_wave = set(r.relay_id for r in fleet.listed_relays())
        fleet.rotate(network.clock.now)
        network.clock.advance_by(HOUR)
        network.rebuild_consensus()
        second_wave = set(r.relay_id for r in fleet.listed_relays())
        assert len(second_wave) == 4
        assert first_wave.isdisjoint(second_wave)

    def test_shadows_enter_with_hsdir_after_ripening(self, network_and_pool):
        network, pool = network_and_pool
        fleet = ShadowFleet(network, ip_count=2, relays_per_ip=4,
                            rng=derive_rng(4, "f"), address_pool=pool)
        for _ in range(26):
            network.clock.advance_by(HOUR)
            network.rebuild_consensus()
        fleet.rotate(network.clock.now)
        network.clock.advance_by(HOUR)
        network.rebuild_consensus()
        for relay in fleet.listed_relays():
            assert network.consensus.entry_for(relay.fingerprint).has(RelayFlags.HSDIR)

    def test_waves_remaining(self, network_and_pool):
        network, pool = network_and_pool
        fleet = ShadowFleet(network, ip_count=2, relays_per_ip=6,
                            rng=derive_rng(5, "f"), address_pool=pool)
        assert fleet.waves_remaining() == 3

    def test_degenerate_fleet_rejected(self, network_and_pool):
        network, pool = network_and_pool
        with pytest.raises(AttackError):
            ShadowFleet(network, ip_count=0, relays_per_ip=2,
                        rng=derive_rng(6, "f"), address_pool=pool)


class TestHarvestResult:
    def test_absorb_server(self):
        from repro.hsdir.directory import StoredDescriptor

        server = HSDirServer(relay_id=1)
        server.store(
            StoredDescriptor(
                descriptor_id=b"\x01" * 20, public_der=b"key", replica=0, published_at=0
            ),
            now=0,
        )
        server.fetch(b"\x01" * 20, now=1)
        server.fetch(b"\x02" * 20, now=2)
        harvest = HarvestResult()
        harvest.absorb_server(server, now=HOUR)
        assert harvest.descriptors_collected == 1
        assert len(harvest.onions) == 1
        assert harvest.total_requests == 2
        assert harvest.unique_requested_ids == 2
        assert harvest.requests_for(b"\x01" * 20) == 1
        assert harvest.requests_for(b"\x09" * 20) == 0


class TestRingHistory:
    def test_covered_seconds(self):
        history = RingHistory()
        positions = sorted([100, 200, 300, 400])
        desc_id = (150).to_bytes(20, "big")
        # Hour 1: attacker at 200 (first follower of 150) → covered.
        history.record(0, positions, {200})
        # Hour 2: attacker at 100 only (not among 3 followers of 150: 200,300,400).
        history.record(3600, positions, {100})
        assert history.covered_seconds(desc_id) == 3600

    def test_slot_weighting(self):
        history = RingHistory()
        positions = sorted([100, 200, 300, 400])
        desc_id = (150).to_bytes(20, "big")
        history.record(0, positions, {200, 300, 400})  # all three slots
        assert history.slot_weighted_seconds(desc_id) == 3600

    def test_normalized_rate_full_coverage(self):
        history = RingHistory()
        positions = sorted([100, 200, 300, 400])
        desc_id = (150).to_bytes(20, "big")
        for hour in range(2):
            history.record(hour * 3600, positions, {200, 300, 400})
        # 50 raw requests over a fully covered 2-hour window → rate 50.
        assert history.normalized_rate(desc_id, 30, 20) == pytest.approx(50.0)

    def test_normalized_rate_partial_coverage_scales_up(self):
        history = RingHistory()
        positions = sorted([100, 200, 300, 400])
        desc_id = (150).to_bytes(20, "big")
        history.record(0, positions, {200})  # 1 of 3 slots, 1 of 2 hours
        history.record(3600, positions, set())
        # A third of a slot-hour of observation in a 2-hour window → ×6.
        assert history.normalized_rate(desc_id, 10, 0) == pytest.approx(60.0)


class TestTrawlAttackEndToEnd:
    def test_harvest_collects_most_services(self):
        population = generate_population(seed=13, scale=0.01)
        network, pool = make_network(seed=31, relay_count=120)
        publisher = PublishScheduler(network, population.services)
        publisher.publish_initial(network.clock.now)
        attack = TrawlAttack(
            network,
            TrawlConfig(ip_count=8, relays_per_ip=16, ripen_hours=26, sweep_hours=8),
            derive_rng(14, "a"),
            pool,
        )
        harvest = attack.run(population.services, publisher)
        assert len(harvest.onions) >= 0.85 * len(population.records)
        assert harvest.total_requests == 0  # no client traffic in this run
        assert attack.coverage.waves_completed == 8
        # Every harvested onion is a real one (derived from key material).
        published = set(population.all_onions)
        assert harvest.onions <= published

    def test_config_validation(self):
        with pytest.raises(AttackError):
            TrawlConfig(ip_count=0)
        with pytest.raises(AttackError):
            TrawlConfig(ripen_hours=10)
        with pytest.raises(AttackError):
            TrawlConfig(sweep_hours=0)

    def test_double_deploy_rejected(self, network_and_pool):
        network, pool = network_and_pool
        attack = TrawlAttack(
            network, TrawlConfig(ip_count=2, relays_per_ip=4), derive_rng(15, "a"), pool
        )
        attack.deploy()
        with pytest.raises(AttackError):
            attack.deploy()
