"""Tests for repro.relay — relay model, flags, uptime accounting."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.errors import SimulationError
from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay
from repro.sim.clock import HOUR


def make_relay(bandwidth=500, started_at=0, reachable=True):
    return Relay(
        nickname="test",
        ip=0x01020304,
        or_port=9001,
        keypair=KeyPair.generate(random.Random(0)),
        bandwidth=bandwidth,
        started_at=started_at,
        reachable=reachable,
    )


class TestRelayFlags:
    def test_bitmask_composition(self):
        flags = RelayFlags.RUNNING | RelayFlags.HSDIR
        assert flags & RelayFlags.HSDIR
        assert not flags & RelayFlags.GUARD

    def test_names(self):
        flags = RelayFlags.RUNNING | RelayFlags.HSDIR | RelayFlags.GUARD
        assert set(flags.names()) == {"Running", "HSDir", "Guard"}

    def test_none_has_no_names(self):
        assert RelayFlags.NONE.names() == []


class TestUptime:
    def test_accrues_from_start(self):
        relay = make_relay(started_at=100)
        assert relay.uptime(100 + 3 * HOUR) == 3 * HOUR

    def test_zero_when_unreachable(self):
        relay = make_relay(reachable=False)
        assert relay.uptime(10 * HOUR) == 0

    def test_reset_on_downtime(self):
        relay = make_relay(started_at=0)
        relay.set_reachable(False, 10 * HOUR)
        relay.set_reachable(True, 12 * HOUR)
        assert relay.uptime(13 * HOUR) == HOUR

    def test_set_reachable_idempotent(self):
        relay = make_relay(started_at=0)
        relay.set_reachable(True, 5 * HOUR)  # no-op
        assert relay.uptime(6 * HOUR) == 6 * HOUR

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            make_relay(bandwidth=-1)


class TestKeyRotation:
    def test_rotation_changes_fingerprint(self):
        relay = make_relay()
        old = relay.fingerprint
        relay.rotate_key(random.Random(1), now=100)
        assert relay.fingerprint != old

    def test_rotation_recorded(self):
        relay = make_relay()
        old = relay.fingerprint
        relay.rotate_key(random.Random(1), now=100)
        assert len(relay.key_changes) == 1
        change = relay.key_changes[0]
        assert change.old_fingerprint == old
        assert change.new_fingerprint == relay.fingerprint
        assert change.time == 100

    def test_rotation_resets_uptime(self):
        """A new identity key is a new relay to the authorities: the 25-hour
        HSDir clock restarts — why Section VII trackers rotate early."""
        relay = make_relay(started_at=0)
        assert relay.uptime(30 * HOUR) == 30 * HOUR
        relay.rotate_key(random.Random(1), now=30 * HOUR)
        assert relay.uptime(31 * HOUR) == HOUR

    def test_adopt_specific_key(self):
        relay = make_relay()
        forged = KeyPair.with_forged_fingerprint(b"\x42" * 20)
        relay.adopt_key(forged, now=50)
        assert relay.fingerprint == b"\x42" * 20

    def test_multiple_rotations_accumulate_history(self):
        relay = make_relay()
        rng = random.Random(2)
        for t in (10, 20, 30):
            relay.rotate_key(rng, now=t)
        assert len(relay.key_changes) == 3
        # Chain consistency: each change's old key is the previous new key.
        for earlier, later in zip(relay.key_changes, relay.key_changes[1:]):
            assert earlier.new_fingerprint == later.old_fingerprint

    def test_address_stable_across_rotation(self):
        relay = make_relay()
        address = relay.address
        relay.rotate_key(random.Random(1), now=10)
        assert relay.address == address
