"""Tests for repro.parallel — the deterministic shard-map executor.

The properties that make ``pmap`` safe to sprinkle over the experiments:

- the shard partition covers every item exactly once, balanced, and is a
  pure function of ``(item_count, shard_count)``;
- results merge in item order no matter which shard finishes first;
- every item's RNG stream depends only on ``(seed, path, global index)``,
  so re-sharding or changing the worker count cannot perturb a draw.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParallelError
from repro.parallel import (
    SHARDS_PER_WORKER,
    WORKERS_ENV,
    item_rng,
    pmap,
    resolve_workers,
    shard_bounds,
)
from repro.parallel import executor as executor_module


def square(value):
    """Module-level so the process pool can pickle it."""
    return value * value


def draw_pair(value, rng):
    """Seeded variant: returns the item with its stream's first draws."""
    return (value, rng.random(), rng.getrandbits(32))


def sleepy_identity(value):
    """Items in the first shard finish *last*; merge order must not care."""
    time.sleep(0.05 if value < 2 else 0.0)
    return value


class TestShardBounds:
    @given(item_count=st.integers(0, 3000), shard_count=st.integers(1, 64))
    def test_partition_covers_every_item_exactly_once(
        self, item_count, shard_count
    ):
        bounds = shard_bounds(item_count, shard_count)
        covered = [i for start, stop in bounds for i in range(start, stop)]
        assert covered == list(range(item_count))

    @given(item_count=st.integers(1, 3000), shard_count=st.integers(1, 64))
    def test_balanced_and_never_empty(self, item_count, shard_count):
        sizes = [stop - start for start, stop in shard_bounds(item_count, shard_count)]
        assert len(sizes) == min(item_count, shard_count)
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1

    def test_pure_function_of_counts(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_bounds(10, 3) == shard_bounds(10, 3)

    def test_zero_items_is_empty(self):
        assert shard_bounds(0, 8) == []

    def test_invalid_counts_rejected(self):
        with pytest.raises(ParallelError):
            shard_bounds(-1, 4)
        with pytest.raises(ParallelError):
            shard_bounds(10, 0)


class TestItemRng:
    @given(
        seed=st.integers(0, 2**32),
        indexes=st.lists(st.integers(0, 10_000), min_size=2, max_size=6, unique=True),
    )
    def test_streams_pairwise_distinct(self, seed, indexes):
        openings = [
            tuple(item_rng(seed, ("prop",), index).random() for _ in range(4))
            for index in indexes
        ]
        assert len(set(openings)) == len(indexes)

    @given(seed=st.integers(0, 2**32), index=st.integers(0, 10_000))
    def test_stream_is_reproducible(self, seed, index):
        first = item_rng(seed, ("a", "b"), index).random()
        again = item_rng(seed, ("a", "b"), index).random()
        assert first == again

    def test_path_separates_streams(self):
        assert item_rng(0, ("scan",), 3).random() != item_rng(0, ("crawl",), 3).random()

    @settings(max_examples=30)
    @given(
        seed=st.integers(0, 2**32),
        item_count=st.integers(1, 120),
        shards_a=st.integers(1, 16),
        shards_b=st.integers(1, 16),
    )
    def test_streams_stable_under_resharding(
        self, seed, item_count, shards_a, shards_b
    ):
        items = list(range(item_count))
        out_a = pmap(
            draw_pair, items, seed=seed, seed_path=("re",), workers=1, shards=shards_a
        )
        out_b = pmap(
            draw_pair, items, seed=seed, seed_path=("re",), workers=1, shards=shards_b
        )
        assert out_a == out_b


class TestPmapSerial:
    def test_maps_in_item_order(self):
        assert pmap(square, range(17), workers=1) == [v * v for v in range(17)]

    def test_empty_items(self):
        assert pmap(square, [], workers=8) == []

    def test_closure_runs_in_process_in_item_order(self):
        seen = []

        def record(value):
            seen.append(value)
            return value + 1

        # A closure cannot pickle, so even workers=4 must stay in-process —
        # `seen` filling up in order in *this* process proves it did.
        out = pmap(record, range(10), workers=4)
        assert out == [v + 1 for v in range(10)]
        assert seen == list(range(10))

    def test_nested_pmap_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_IN_WORKER", True)

        class Forbidden:
            def __init__(self, *args, **kwargs):
                raise AssertionError("nested pmap must not fork grandchildren")

        monkeypatch.setattr(
            executor_module.futures, "ProcessPoolExecutor", Forbidden
        )
        assert pmap(square, range(9), workers=4) == [v * v for v in range(9)]


class TestPmapPool:
    def test_pool_matches_serial(self):
        serial = pmap(square, range(40), workers=1)
        pooled = pmap(square, range(40), workers=4)
        assert pooled == serial

    def test_pool_matches_serial_with_seeded_streams(self):
        serial = pmap(draw_pair, range(24), seed=7, seed_path=("eq",), workers=1)
        pooled = pmap(draw_pair, range(24), seed=7, seed_path=("eq",), workers=3)
        assert pooled == serial

    def test_merge_order_ignores_completion_order(self):
        # Shard 0 sleeps while the rest return instantly; the merge must
        # still come back in item order, not completion order.
        out = pmap(sleepy_identity, range(8), workers=2, shards=4)
        assert out == list(range(8))


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_blank_env_is_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers(None) == 1

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ParallelError):
            resolve_workers(None)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ParallelError):
            resolve_workers(bad)

    def test_shards_default_scales_with_workers(self):
        # Contract documented on SHARDS_PER_WORKER: enough shards that one
        # slow shard cannot idle the pool.
        assert SHARDS_PER_WORKER >= 2
