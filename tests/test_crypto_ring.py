"""Tests for repro.crypto.ring — the HSDir fingerprint ring."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyPair
from repro.crypto.ring import (
    HSDIRS_PER_REPLICA,
    RING_SIZE,
    FingerprintRing,
    responsible_positions,
    ring_distance,
)
from repro.errors import CryptoError


def make_fingerprints(count, seed=0):
    rng = random.Random(seed)
    return [KeyPair.generate(rng).fingerprint for _ in range(count)]


class TestRingDistance:
    def test_forward(self):
        assert ring_distance(1, 5) == 4

    def test_wraps(self):
        assert ring_distance(RING_SIZE - 1, 1) == 2

    def test_zero(self):
        assert ring_distance(7, 7) == 0

    @given(
        st.integers(min_value=0, max_value=RING_SIZE - 1),
        st.integers(min_value=0, max_value=RING_SIZE - 1),
    )
    def test_in_range(self, a, b):
        assert 0 <= ring_distance(a, b) < RING_SIZE

    @given(
        st.integers(min_value=0, max_value=RING_SIZE - 1),
        st.integers(min_value=0, max_value=RING_SIZE - 1),
    )
    def test_antisymmetric_sum(self, a, b):
        if a != b:
            assert ring_distance(a, b) + ring_distance(b, a) == RING_SIZE


class TestResponsiblePositions:
    def test_takes_the_following_points(self):
        points = [10, 20, 30, 40]
        assert responsible_positions(15, points) == [20, 30, 40]

    def test_exact_hit_excluded(self):
        # rend-spec: the descriptor goes to fingerprints *after* the ID.
        points = [10, 20, 30, 40]
        assert responsible_positions(20, points) == [30, 40, 10]

    def test_wraparound(self):
        points = [10, 20, 30]
        assert responsible_positions(35, points) == [10, 20, 30]

    def test_empty_ring(self):
        assert responsible_positions(5, []) == []

    def test_small_ring_truncates(self):
        assert responsible_positions(0, [5]) == [5]

    @settings(max_examples=60)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=RING_SIZE - 1),
            min_size=4,
            max_size=40,
            unique=True,
        ),
        st.integers(min_value=0, max_value=RING_SIZE - 1),
    )
    def test_properties(self, points, descriptor_point):
        points = sorted(points)
        result = responsible_positions(descriptor_point, points)
        # Exactly three, all distinct, all members.
        assert len(result) == HSDIRS_PER_REPLICA
        assert len(set(result)) == HSDIRS_PER_REPLICA
        assert all(p in points for p in result)
        # They are the three *closest* following points.
        by_distance = sorted(points, key=lambda p: ring_distance(descriptor_point, p))
        closest_following = [
            p for p in by_distance if ring_distance(descriptor_point, p) > 0
        ][:HSDIRS_PER_REPLICA]
        # On exact hit the point itself sorts at distance 0 and is skipped.
        assert set(result) == set(closest_following) or descriptor_point in points


class TestFingerprintRing:
    def test_len_and_contains(self):
        fps = make_fingerprints(10)
        ring = FingerprintRing(fps)
        assert len(ring) == 10
        assert fps[0] in ring
        assert make_fingerprints(1, seed=99)[0] not in ring

    def test_duplicate_fingerprints_collapse(self):
        fps = make_fingerprints(5)
        ring = FingerprintRing(fps + fps)
        assert len(ring) == 5

    def test_fingerprints_sorted_by_position(self):
        ring = FingerprintRing(make_fingerprints(20))
        positions = [int.from_bytes(fp, "big") for fp in ring.fingerprints]
        assert positions == sorted(positions)

    def test_responsible_for_returns_three(self):
        ring = FingerprintRing(make_fingerprints(50))
        desc_id = make_fingerprints(1, seed=7)[0]
        assert len(ring.responsible_for(desc_id)) == 3

    def test_average_gap_total(self):
        ring = FingerprintRing(make_fingerprints(64))
        assert ring.average_gap() == RING_SIZE // 64

    def test_average_gap_empty_ring_raises(self):
        with pytest.raises(CryptoError):
            FingerprintRing([]).average_gap()

    def test_positioning_ratio_for_adjacent_fingerprint(self):
        fps = make_fingerprints(100)
        ring = FingerprintRing(fps)
        desc_id = make_fingerprints(1, seed=5)[0]
        first_responsible = ring.responsible_for(desc_id)[0]
        ratio = ring.positioning_ratio(desc_id, first_responsible)
        assert ratio > 0

    def test_positioning_ratio_zero_distance_is_infinite(self):
        fps = make_fingerprints(10)
        ring = FingerprintRing(fps)
        assert ring.positioning_ratio(fps[0], fps[0]) == float("inf")

    def test_ground_key_beats_honest_relays(self):
        """A forged fingerprint just after the descriptor ID takes the first
        responsible slot — the Section VII attacker move."""
        rng = random.Random(4)
        fps = make_fingerprints(200)
        desc_id = make_fingerprints(1, seed=8)[0]
        point = int.from_bytes(desc_id, "big")
        forged = KeyPair.forge_near(rng, point, RING_SIZE // 200 // 1000)
        ring = FingerprintRing(fps + [forged.fingerprint])
        assert ring.responsible_for(desc_id)[0] == forged.fingerprint
        assert ring.positioning_ratio(desc_id, forged.fingerprint) >= 1000
