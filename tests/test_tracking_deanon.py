"""Tests for repro.tracking.deanon — the opportunistic client capture."""

import random

import pytest

from repro.client.client import TorClient
from repro.crypto.descriptor_id import REPLICAS, descriptor_id
from repro.crypto.keys import KeyPair
from repro.errors import AttackError
from repro.hs.service import HiddenService
from repro.relay.flags import RelayFlags
from repro.sim.rng import derive_rng
from repro.tracking.deanon import ClientDeanonAttack, deploy_attacker_guards


def setup_attack(network, pool, target, watch_all=False):
    """Deploy guards, mark the responsible HSDirs as attacker-controlled."""
    guards = deploy_attacker_guards(
        network, 6, derive_rng(1, "g"), bandwidth=8000, address_pool=pool
    )
    network.rebuild_consensus(network.clock.now)
    network.publish_service(target)
    now = network.clock.now
    target_ids = {
        descriptor_id(target.onion, now, replica) for replica in range(REPLICAS)
    }
    hsdir_ids = set()
    for fp in network.responsible_set(target.onion):
        relay = network.relay_for_fingerprint(fp)
        hsdir_ids.add(relay.relay_id)
    attack = ClientDeanonAttack(
        hsdir_relay_ids=hsdir_ids,
        guard_fingerprints=frozenset(g.fingerprint for g in guards),
        target_descriptor_ids=None if watch_all else target_ids,
        rng=derive_rng(2, "sig"),
    )
    attack.attach(network)
    return attack, guards


def run_clients(network, target, count=120, fetches=3, seed=3):
    rng = derive_rng(seed, "clients")
    clients = []
    for i in range(count):
        client = TorClient(ip=rng.getrandbits(32), rng=derive_rng(seed, "c", str(i)))
        client.refresh_guards(network)
        clients.append(client)
    for client in clients:
        for _ in range(fetches):
            client.fetch_onion(network, target.onion)
    return clients


class TestClientDeanonAttack:
    def test_captures_subset_of_clients(self, network_and_pool):
        network, pool = network_and_pool
        target = HiddenService(
            keypair=KeyPair.generate(random.Random(50)), online_from=0
        )
        attack, guards = setup_attack(network, pool, target)
        run_clients(network, target)
        assert attack.signatures_injected > 0
        assert 0 < len(attack.captures) < attack.signatures_injected
        assert attack.false_positives == 0

    def test_captured_guard_is_attackers(self, network_and_pool):
        network, pool = network_and_pool
        target = HiddenService(
            keypair=KeyPair.generate(random.Random(51)), online_from=0
        )
        attack, guards = setup_attack(network, pool, target)
        run_clients(network, target)
        guard_fps = {g.fingerprint for g in guards}
        for capture in attack.captures:
            assert capture.guard_fingerprint in guard_fps

    def test_capture_rate_tracks_guard_share(self, network_and_pool):
        network, pool = network_and_pool
        target = HiddenService(
            keypair=KeyPair.generate(random.Random(52)), online_from=0
        )
        attack, guards = setup_attack(network, pool, target)
        run_clients(network, target, count=250)
        entries = network.consensus.with_flag(RelayFlags.GUARD)
        total_bw = sum(e.bandwidth for e in entries)
        attacker_bw = sum(
            e.bandwidth for e in entries if e.fingerprint in attack.guard_fingerprints
        )
        share = attacker_bw / total_bw
        rate = attack.capture_rate()
        assert abs(rate - share) < 0.6 * share + 0.05

    def test_untargeted_descriptors_ignored(self, network_and_pool):
        network, pool = network_and_pool
        target = HiddenService(
            keypair=KeyPair.generate(random.Random(53)), online_from=0
        )
        other = HiddenService(
            keypair=KeyPair.generate(random.Random(54)), online_from=0
        )
        attack, _ = setup_attack(network, pool, target)
        network.publish_service(other)
        injected_before = attack.signatures_injected
        client = TorClient(ip=1, rng=derive_rng(4, "c"))
        client.refresh_guards(network)
        client.fetch_onion(network, other.onion)
        # Only fetches that happen to hit the attacker's directories AND
        # target list inject; `other`'s directories are (wlog) different.
        assert attack.signatures_injected in (injected_before, injected_before)

    def test_visit_counts_separate_heavy_users(self, network_and_pool):
        """The Silk Road sellers-vs-buyers discriminator: per-IP visit
        frequency."""
        network, pool = network_and_pool
        target = HiddenService(
            keypair=KeyPair.generate(random.Random(55)), online_from=0
        )
        attack, guards = setup_attack(network, pool, target)
        # One "seller" visits 60×; buyers once each.
        seller = TorClient(ip=0xDEADBEEF, rng=derive_rng(5, "seller"))
        seller.refresh_guards(network)
        # Force the seller behind an attacker guard for determinism.
        seller.guards._slots[0].fingerprint = guards[0].fingerprint
        for _ in range(60):
            seller.fetch_onion(network, target.onion)
        run_clients(network, target, count=40, fetches=1, seed=6)
        counts = attack.visit_counts()
        assert counts.get(0xDEADBEEF, 0) >= 10
        assert max(counts.values()) == counts[0xDEADBEEF]

    def test_retarget(self, network_and_pool):
        network, pool = network_and_pool
        attack = ClientDeanonAttack(
            hsdir_relay_ids=set(), guard_fingerprints=frozenset()
        )
        attack.retarget({b"\x01" * 20})
        assert attack.target_descriptor_ids == {b"\x01" * 20}

    def test_guard_deployment_validation(self, network_and_pool):
        network, pool = network_and_pool
        with pytest.raises(AttackError):
            deploy_attacker_guards(network, 0, derive_rng(7, "g"), address_pool=pool)

    def test_deployed_guards_get_guard_flag(self, network_and_pool):
        network, pool = network_and_pool
        guards = deploy_attacker_guards(
            network, 3, derive_rng(8, "g"), address_pool=pool
        )
        consensus = network.rebuild_consensus(network.clock.now)
        for relay in guards:
            assert consensus.entry_for(relay.fingerprint).has(RelayFlags.GUARD)
