"""Tests for repro.hs.publisher."""

import random

from repro.crypto.keys import KeyPair
from repro.hs.publisher import PublishScheduler
from repro.hs.service import HiddenService
from repro.sim.clock import DAY, HOUR
from repro.sim.engine import EventEngine
from repro.sim.rng import derive_rng


def make_services(count, online_from=0):
    rng = random.Random(7)
    return [
        HiddenService(keypair=KeyPair.generate(rng), online_from=online_from)
        for _ in range(count)
    ]


class TestPublishDue:
    def test_initial_publish_covers_online_services(self, network):
        services = make_services(5)
        scheduler = PublishScheduler(network, services)
        delivered = scheduler.publish_initial(network.clock.now)
        assert delivered == 5 * 6

    def test_no_republish_before_boundary(self, network):
        services = make_services(3)
        scheduler = PublishScheduler(network, services)
        scheduler.publish_initial(network.clock.now)
        assert scheduler.publish_due(network.clock.now + HOUR) == 0

    def test_republish_after_boundary(self, network):
        services = make_services(3)
        scheduler = PublishScheduler(network, services)
        scheduler.publish_initial(network.clock.now)
        network.clock.advance_by(DAY)
        network.rebuild_consensus()
        assert scheduler.publish_due(network.clock.now) == 3 * 6

    def test_offline_service_skipped(self, network):
        service = make_services(1)[0]
        service.online_until = network.clock.now + HOUR
        scheduler = PublishScheduler(network, [service])
        scheduler.publish_initial(network.clock.now)
        network.clock.advance_by(DAY)
        network.rebuild_consensus()
        assert scheduler.publish_due(network.clock.now) == 0


class TestMaintain:
    def test_republish_when_responsible_set_changes(self, network_and_pool):
        """The behaviour the trawl exploits: a new HSDir in the right ring
        position pulls a fresh upload."""
        network, pool = network_and_pool
        service = make_services(1)[0]
        scheduler = PublishScheduler(network, [service])
        scheduler.publish_initial(network.clock.now)
        scheduler.maintain(network.clock.now)

        # Plant a relay that becomes responsible for the service's replica-0
        # descriptor (ground key just past the descriptor ID).
        from repro.crypto.descriptor_id import descriptor_id
        from repro.crypto.ring import RING_SIZE
        from repro.relay.relay import Relay

        desc = descriptor_id(service.onion, network.clock.now, 0)
        key = KeyPair.forge_near(
            derive_rng(1, "forge"),
            int.from_bytes(desc, "big"),
            RING_SIZE // 10**9,
        )
        intruder = Relay(
            nickname="intruder",
            ip=pool.allocate(),
            or_port=9001,
            keypair=key,
            bandwidth=500,
            started_at=network.clock.now - 2 * DAY,
        )
        network.add_relay(intruder)
        network.clock.advance_by(HOUR)
        network.rebuild_consensus()
        delivered = scheduler.maintain(network.clock.now)
        assert delivered >= 6  # responsible set changed → republished
        server = network.hsdir_server_for(intruder)
        assert server.publishes_received >= 1

    def test_maintain_idempotent_when_nothing_changes(self, network):
        services = make_services(2)
        scheduler = PublishScheduler(network, services)
        scheduler.publish_initial(network.clock.now)
        scheduler.maintain(network.clock.now)
        assert scheduler.maintain(network.clock.now) == 0


class TestEngineAttachment:
    def test_events_scheduled_per_period(self, network):
        services = make_services(2)
        scheduler = PublishScheduler(network, services)
        engine = EventEngine(network.clock)
        scheduled = scheduler.attach_to_engine(engine, network.clock.now + 3 * DAY)
        assert scheduled == 2 * 3

    def test_engine_driven_republish(self, network):
        service = make_services(1)[0]
        scheduler = PublishScheduler(network, [service])
        engine = EventEngine(network.clock)
        scheduler.attach_to_engine(engine, network.clock.now + DAY)
        engine.run_until(network.clock.now + DAY)
        assert service.publish_count >= 1
