"""Tests for repro.population.generator — the generated world's shape."""

from collections import Counter

from repro.population.generator import (
    CRAWL_DATE,
    HARVEST_DATE,
    SCAN_END,
    SCAN_START,
)
from repro.population.spec import PORT_SKYNET


class TestWorldShape:
    def test_record_count_matches_spec(self, small_population):
        assert len(small_population.records) == small_population.spec.total_onions

    def test_unique_onions(self, small_population):
        onions = small_population.all_onions
        assert len(set(onions)) == len(onions)

    def test_registry_covers_all_records(self, small_population):
        for record in small_population.records[:100]:
            assert small_population.registry.lookup(record.onion) is not None

    def test_group_quotas(self, small_population):
        spec = small_population.spec
        counts = Counter(record.group for record in small_population.records)
        assert counts["skynet-bot"] == spec.skynet_bot_count
        assert counts["dead"] == spec.dead_by_scan_count
        assert counts["goldnet"] == spec.goldnet_front_count
        assert counts["torhost-default"] == spec.torhost_default_count
        assert counts["ssh"] == spec.ssh_count

    def test_ghosts_not_in_registry(self, small_population):
        for ghost in small_population.ghost_onions[:50]:
            assert small_population.registry.lookup(ghost) is None

    def test_tail_onions_are_published(self, small_population):
        published = set(small_population.all_onions)
        assert all(onion in published for onion in small_population.tail_onions)

    def test_tail_excludes_named(self, small_population):
        named = set(small_population.named_onions.values())
        assert not named & set(small_population.tail_onions)


class TestAvailabilityWindows:
    def test_everyone_alive_at_harvest(self, small_population):
        alive = sum(
            1
            for record in small_population.records
            if record.service.is_online(HARVEST_DATE)
        )
        assert alive == len(small_population.records)

    def test_dead_group_gone_by_scan(self, small_population):
        for record in small_population.records_in_group("dead"):
            assert not record.service.is_online(SCAN_START)

    def test_descriptor_availability_tracks_service(self, small_population):
        dead = small_population.records_in_group("dead")[0]
        assert small_population.descriptor_available(dead.onion, HARVEST_DATE)
        assert not small_population.descriptor_available(dead.onion, SCAN_START)

    def test_unknown_onion_has_no_descriptor(self, small_population):
        assert not small_population.descriptor_available(
            "aaaaaaaaaaaaaaaa.onion", HARVEST_DATE
        )

    def test_named_services_never_churn(self, small_population):
        for label, onion in small_population.named_onions.items():
            record = small_population.record_for(onion)
            assert record.service.is_online(CRAWL_DATE), label

    def test_scan_coverage_loss_is_planted(self, small_population):
        """Some alive hosts must have down-days inside the scan window —
        the mechanism behind the 87% port coverage."""
        down_day_hosts = sum(
            1
            for record in small_population.records
            if record.group != "dead" and record.service.host.down_days
        )
        assert down_day_hosts > 0


class TestContentAssignments:
    def test_skynet_bots_expose_only_55080(self, small_population):
        for record in small_population.records_in_group("skynet-bot")[:50]:
            assert record.service.host.open_ports == [PORT_SKYNET]

    def test_goldnet_serves_503(self, small_population):
        record = small_population.records_in_group("goldnet")[0]
        app = record.service.host.endpoint_on(80).application
        assert app.handle_request("/", CRAWL_DATE).status == 503

    def test_torhost_certs_point_at_hosting_service(self, small_population):
        torhost_onion = small_population.named_onions["torhost-main"]
        record = small_population.records_in_group("torhost-default")[0]
        cert = record.service.host.endpoint_on(443).application.certificate
        assert cert.common_name == torhost_onion
        assert cert.self_signed

    def test_deanon_certs_name_clearnet_hosts(self, small_population):
        for record in small_population.records_in_group("deanon-cert"):
            cert = record.service.host.endpoint_on(443).application.certificate
            assert cert.names_public_dns

    def test_dual_sites_serve_same_content_on_both_ports(self, small_population):
        record = small_population.records_in_group("torhost-content")[0]
        http = record.service.host.endpoint_on(80).application
        https = record.service.host.endpoint_on(443).application
        assert http.html == https.html

    def test_english_topic_sites_have_topics(self, small_population):
        for record in small_population.records_in_group("http-content")[:50]:
            if record.language == "en":
                assert record.topic is not None

    def test_named_labels_bound(self, small_population):
        for label in ("silkroad", "duckduckgo", "goldnet-1", "torhost-main"):
            assert label in small_population.named_onions

    def test_silkroad_record_is_drugs(self, small_population):
        record = small_population.record_for(
            small_population.named_onions["silkroad"]
        )
        assert record.topic == "drugs"

    def test_determinism(self):
        from repro.population import generate_population

        a = generate_population(seed=42, scale=0.01)
        b = generate_population(seed=42, scale=0.01)
        assert a.all_onions == b.all_onions
        assert a.named_onions == b.named_onions

    def test_different_seeds_differ(self):
        from repro.population import generate_population

        a = generate_population(seed=1, scale=0.01)
        b = generate_population(seed=2, scale=0.01)
        assert a.all_onions != b.all_onions
