"""Tests for repro.scan — schedule, scanner, results, TLS analysis."""

import pytest

from repro.crypto.onion import onion_address_from_key
from repro.errors import AttackError
from repro.net.endpoint import ConnectOutcome
from repro.net.transport import TorTransport
from repro.obs import Observer
from repro.population.spec import PORT_SKYNET
from repro.scan import (
    PortScanner,
    ScanSchedule,
    analyze_certificates,
    collect_certificates,
)
from repro.scan.results import FIG1_BINS, ScanResults
from repro.sim.clock import DAY
from repro.sim.rng import derive_rng


class TestScanSchedule:
    def test_chunks_partition_port_space(self):
        schedule = ScanSchedule(start=0, days=8)
        seen = set()
        for chunk in schedule.all_ports():
            overlap = seen & set((chunk.start, chunk.stop - 1))
            assert not overlap
            seen.update((chunk.start, chunk.stop - 1))
        total = sum(len(chunk) for chunk in schedule.all_ports())
        assert total == 65535

    def test_day_of_port(self):
        schedule = ScanSchedule(start=0, days=4)
        for port in (1, 80, 443, 22222, 65535):
            day = schedule.day_of_port(port)
            assert port in schedule.chunk_for_day(day)

    def test_iteration_times_advance_daily(self):
        schedule = ScanSchedule(start=0, days=3)
        times = [when for _, when, _ in schedule]
        assert times[1] - times[0] == DAY

    def test_end(self):
        assert ScanSchedule(start=100, days=2).end == 100 + 2 * DAY

    def test_invalid_days(self):
        with pytest.raises(AttackError):
            ScanSchedule(start=0, days=0)

    def test_invalid_port_range(self):
        with pytest.raises(AttackError):
            ScanSchedule(start=0, days=1, first_port=100, last_port=50)

    def test_day_index_out_of_range(self):
        with pytest.raises(AttackError):
            ScanSchedule(start=0, days=2).chunk_for_day(2)


class TestScanResults:
    def test_record_and_aggregate(self):
        results = ScanResults()
        onion = onion_address_from_key(b"a")
        results.record(onion, 80, ConnectOutcome.OPEN)
        results.record(onion, PORT_SKYNET, ConnectOutcome.ABNORMAL_ERROR)
        results.record(onion, 99, ConnectOutcome.TIMEOUT)
        assert results.total_open_ports == 2
        assert results.timeouts == 1
        assert results.ports_of(onion) == [80, PORT_SKYNET]

    def test_distribution_bins(self):
        results = ScanResults()
        for i, (port, _label) in enumerate(FIG1_BINS):
            onion = onion_address_from_key(bytes([i]))
            results.record(onion, port, ConnectOutcome.OPEN)
        onion = onion_address_from_key(b"misc")
        results.record(onion, 12345, ConnectOutcome.OPEN)
        dist = results.port_distribution()
        assert dist.counts["80-http"] == 1
        assert dist.counts["other"] == 1
        assert dist.unique_ports == len(FIG1_BINS) + 1
        assert dist.total_open == len(FIG1_BINS) + 1

    def test_rows_have_other_last(self):
        results = ScanResults()
        onion = onion_address_from_key(b"x")
        results.record(onion, 80, ConnectOutcome.OPEN)
        rows = results.port_distribution().as_rows()
        assert rows[-1][0] == "other"

    def test_destinations_excluding(self):
        results = ScanResults()
        onion = onion_address_from_key(b"y")
        results.record(onion, 80, ConnectOutcome.OPEN)
        results.record(onion, PORT_SKYNET, ConnectOutcome.ABNORMAL_ERROR)
        assert results.destinations_excluding(PORT_SKYNET) == [(onion, 80)]


class TestScannerIntegration:
    """Scanner + small world: coverage mechanics end to end."""

    def test_finds_majority_of_ports(self, small_population, small_pipeline):
        scan = small_pipeline.scan()
        spec = small_population.spec
        dist = scan.port_distribution()
        skynet = dist.counts.get("55080-Skynet", 0)
        # ~87% of true bots should be found (down-day losses).
        assert 0.75 * spec.skynet_bot_count <= skynet <= spec.skynet_bot_count

    def test_coverage_is_lossy(self, small_population, small_pipeline):
        scan = small_pipeline.scan()
        assert (
            scan.port_distribution().counts.get("55080-Skynet", 0)
            < small_population.spec.skynet_bot_count
        )

    def test_descriptor_onions_counted(self, small_population, small_pipeline):
        scan = small_pipeline.scan()
        expected_alive = small_population.spec.alive_at_scan_count
        assert abs(len(scan.descriptor_onions) - expected_alive) <= expected_alive * 0.02

    def test_dead_onions_not_reachable(self, small_population, small_pipeline):
        scan = small_pipeline.scan()
        dead = {r.onion for r in small_population.records_in_group("dead")}
        assert not dead & scan.reachable_onions

    def test_abnormal_counted_as_open(self, small_population, small_pipeline):
        scan = small_pipeline.scan()
        outcome_set = {
            outcome
            for (_, port), outcome in scan.open_ports.items()
            if port == PORT_SKYNET
        }
        assert outcome_set == {ConnectOutcome.ABNORMAL_ERROR}


class TestPriorityPortDedupe:
    """Priority ports already inside the day's chunk are probed exactly once.

    Regression: the scanner used to probe ``extra_priority_ports``
    unconditionally, so a priority port that sat inside the day's chunk was
    hit twice — the duplicate burned extra circuit-noise draws (perturbing
    every later probe in the run) and silently overwrote the chunk probe's
    result.  The ``scan_ports_requested_total`` counter is the proof: it
    counts what the scanner *asked for*, so the dedupe shows up as an exact
    per-onion arithmetic identity.
    """

    def _scan(self, population, extra):
        onions = [
            record.onion
            for record in population.records_in_group("skynet-bot")[:30]
        ]
        transport = TorTransport(
            population.registry,
            derive_rng(3, "dedupe"),
            descriptor_available=population.descriptor_available,
        )
        observer = Observer(name="dedupe")
        scanner = PortScanner(transport, observer=observer)
        # One day, ports 1..200: the whole chunk is known exactly.
        schedule = ScanSchedule(
            start=population.scan_start, days=1, first_port=1, last_port=200
        )
        results = scanner.run(onions, schedule, extra_priority_ports=extra)
        requested = observer.registry.counter(
            "scan_ports_requested_total"
        ).value
        return results, requested, len(onions)

    def test_in_chunk_priority_ports_are_not_probed_twice(
        self, small_population
    ):
        # 80 and 130 both sit inside the single day's 1..200 chunk.
        _, requested, onions = self._scan(small_population, extra=[80, 130])
        assert onions > 0
        assert requested == onions * 200  # pre-fix: onions * 202

    def test_out_of_chunk_priority_port_is_still_probed(
        self, small_population
    ):
        results, requested, onions = self._scan(
            small_population, extra=[80, PORT_SKYNET]
        )
        # 80 dedupes away; 55080 is outside 1..200 and costs one probe.
        assert requested == onions * (200 + 1)
        assert PORT_SKYNET in {port for _, port in results.open_ports}

    def test_redundant_priority_ports_change_no_results(
        self, small_population
    ):
        # With every priority port inside the chunk, the probe sequence —
        # and therefore every draw from the shared noise stream — must be
        # identical to a run with no priority ports at all.
        deduped, _, _ = self._scan(small_population, extra=[80, 130])
        plain, _, _ = self._scan(small_population, extra=())
        assert deduped.open_ports == plain.open_ports
        assert deduped.timeouts == plain.timeouts


class TestTlsAnalysis:
    def test_collect_and_classify(self, small_population, small_pipeline):
        scan = small_pipeline.scan()
        https = scan.onions_with_port(443)
        transport = TorTransport(
            small_population.registry,
            derive_rng(0, "tls"),
            descriptor_available=small_population.descriptor_available,
        )
        certs = collect_certificates(
            transport, https, small_population.scan_start + 8 * DAY
        )
        analysis = analyze_certificates(certs)
        spec = small_population.spec
        # TorHost certs dominate the mismatches, as in the paper.
        assert analysis.dominant_cn == small_population.named_onions["torhost-main"]
        assert analysis.self_signed_mismatch >= analysis.dominant_cn_count
        assert (
            0.5 * spec.deanon_cert_count
            <= analysis.deanonymizable_count
            <= spec.deanon_cert_count
        )

    def test_empty_input(self):
        analysis = analyze_certificates({})
        assert analysis.total_certificates == 0
        assert analysis.dominant_cn == ""
