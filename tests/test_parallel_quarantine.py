"""Tests for pmap's robustness hooks: quarantine, crash points, pool rescue.

The contracts under test:

- a poisoned item degrades the result by exactly its own slot (the
  ``QUARANTINED`` sentinel), never by aborting the run — and the
  quarantined set is a function of the items, not of worker count or
  shard boundaries;
- the ``crash_point`` hook fires once per shard, in shard order, in the
  parent process, and whatever it raises propagates untouched;
- a broken process pool (worker death) is rescued by re-running the
  affected shards in the parent, counted as ``pmap_pool_broken_total``.
"""

import os

import pytest

from repro.errors import ParallelError, SimulatedCrashError
from repro.obs.scope import Observer
from repro.parallel import (
    PMAP_SHARD_POINT,
    QUARANTINED,
    ShardQuarantine,
    pmap,
)
from repro.parallel import executor as executor_module

POISON = {3, 11}


def poisoned_square(value):
    """Module-level (picklable) fn that fails on the poison items."""
    if value in POISON:
        raise ValueError(f"poison item {value}")
    return value * value


def poisoned_draw(value, rng):
    if value in POISON:
        raise ValueError(f"poison item {value}")
    return (value, rng.random())


def poisoned_counting(value, observer):
    if value in POISON:
        raise ValueError(f"poison item {value}")
    observer.count("items_ok_total")
    return value


def die_in_worker(value, observer):
    """Kills the pool worker outright; survives when run in the parent.

    Takes the shard observer (the tests below run under an enabled
    observer, so pmap passes it) — which also proves the parent rescue
    threads the observer contract through unchanged.
    """
    if executor_module._IN_WORKER:
        os._exit(1)
    observer.count("survived_in_parent_total")
    return value + 100


class TestQuarantineRecord:
    def test_max_attempts_validated(self):
        with pytest.raises(ParallelError):
            ShardQuarantine(max_attempts=0)

    def test_record_dedupes_on_path_and_index(self):
        quarantine = ShardQuarantine()
        error = ValueError("boom")
        assert quarantine.record(("classify",), 4, error)
        assert not quarantine.record(("classify",), 4, error)
        assert quarantine.record(("classify",), 5, error)
        assert quarantine.record(("scan",), 4, error)
        assert len(quarantine) == 3
        assert quarantine.indices(("classify",)) == [4, 5]

    def test_reports_carry_path_index_and_error(self):
        quarantine = ShardQuarantine()
        quarantine.record(("a", "b"), 7, ValueError("bad page"))
        assert quarantine.reports() == [
            {"path": "a/b", "index": 7, "error": "ValueError: bad page"}
        ]


class TestQuarantinedResults:
    def test_poison_items_become_sentinels(self):
        quarantine = ShardQuarantine()
        out = pmap(poisoned_square, range(16), workers=1, quarantine=quarantine)
        for index, result in enumerate(out):
            if index in POISON:
                assert result is QUARANTINED
            else:
                assert result == index * index
        assert quarantine.indices() == sorted(POISON)

    def test_without_quarantine_poison_propagates(self):
        with pytest.raises(ValueError):
            pmap(poisoned_square, range(16), workers=1)
        with pytest.raises(ValueError):
            pmap(poisoned_square, range(16), workers=2)

    def test_quarantined_set_is_worker_count_invariant(self):
        serial_q = ShardQuarantine()
        pooled_q = ShardQuarantine()
        serial = pmap(poisoned_square, range(16), workers=1, quarantine=serial_q)
        pooled = pmap(poisoned_square, range(16), workers=2, quarantine=pooled_q)
        assert pooled == serial
        assert pooled_q.reports() == serial_q.reports()

    def test_quarantined_set_is_shard_count_invariant(self):
        results = {}
        for shards in (1, 4, 16):
            quarantine = ShardQuarantine()
            out = pmap(
                poisoned_draw,
                range(16),
                seed=7,
                seed_path=("q",),
                workers=1,
                shards=shards,
                quarantine=quarantine,
            )
            results[shards] = (out, quarantine.reports())
        assert results[1] == results[4] == results[16]

    def test_transient_shard_failure_heals_without_quarantine(self):
        flaky_calls = []

        def flaky(value):
            # Fails the whole first shard attempt, then succeeds: the
            # whole-shard retry must rescue it with nothing quarantined.
            if value == 2 and flaky_calls.count(2) == 0:
                flaky_calls.append(value)
                raise ValueError("transient")
            return value

        quarantine = ShardQuarantine(max_attempts=2)
        out = pmap(flaky, range(8), workers=1, shards=2, quarantine=quarantine)
        assert out == list(range(8))
        assert len(quarantine) == 0

    def test_quarantine_metrics_are_worker_count_invariant(self):
        def run(workers):
            observer = Observer(name=f"w{workers}")
            quarantine = ShardQuarantine()
            out = pmap(
                poisoned_counting,
                range(16),
                workers=workers,
                observer=observer,
                quarantine=quarantine,
            )
            return out, observer.registry.counter("items_ok_total").value, (
                observer.registry.counter("pmap_items_quarantined_total").value
            )

        serial = run(1)
        pooled = run(2)
        assert serial == pooled
        assert serial[1] == 16 - len(POISON)
        assert serial[2] == len(POISON)

    def test_shared_quarantine_does_not_double_report_across_calls(self):
        quarantine = ShardQuarantine()
        pmap(poisoned_square, range(16), workers=1, quarantine=quarantine)
        pmap(poisoned_square, range(16), workers=1, quarantine=quarantine)
        assert quarantine.indices() == sorted(POISON)


class TestCrashPoints:
    def test_hook_fires_once_per_shard_in_order(self):
        for workers in (1, 2):
            labels = []
            out = pmap(
                poisoned_square,
                range(8),
                workers=workers,
                shards=4,
                quarantine=ShardQuarantine(),
                crash_point=labels.append,
            )
            assert len(out) == 8
            assert labels == [PMAP_SHARD_POINT] * 4

    def test_simulated_crash_propagates_through_pmap(self):
        # SimulatedCrashError is a BaseException: neither quarantine nor
        # pool rescue may absorb it — only the supervisor.
        for workers in (1, 2):
            visits = {"n": 0}

            def crash_point(label):
                visits["n"] += 1
                if visits["n"] == 2:
                    raise SimulatedCrashError(point=label, visit=2)

            with pytest.raises(SimulatedCrashError):
                pmap(
                    poisoned_square,
                    range(8),
                    workers=workers,
                    shards=4,
                    quarantine=ShardQuarantine(),
                    crash_point=crash_point,
                )
            assert visits["n"] == 2


class TestBrokenPool:
    def test_worker_death_is_rescued_in_parent(self):
        observer = Observer(name="broken")
        out = pmap(die_in_worker, range(12), workers=2, observer=observer)
        assert out == [v + 100 for v in range(12)]
        assert observer.registry.counter("pmap_pool_broken_total").value == 1

    def test_worker_death_with_quarantine_and_crash_points(self):
        observer = Observer(name="broken")
        labels = []
        quarantine = ShardQuarantine()
        out = pmap(
            die_in_worker,
            range(12),
            workers=2,
            shards=4,
            observer=observer,
            quarantine=quarantine,
            crash_point=labels.append,
        )
        assert out == [v + 100 for v in range(12)]
        assert len(quarantine) == 0
        assert labels == [PMAP_SHARD_POINT] * 4
        assert observer.registry.counter("pmap_pool_broken_total").value == 1
