"""Tests for repro.store checkpointing, the ledger and store admin."""

import json

import pytest

from repro.errors import StoreError
from repro.obs import Observer
from repro.store import ArtifactStore, Stage, StateCursor, open_store
from repro.store.admin import gc, iter_index, ls_lines, verify
from repro.store.config import STORE_ENV, resolve_store_dir
from repro.store.ledger import Ledger


def make_stage(name="double"):
    """A stage whose artifact is a plain dict (identity encode/decode)."""
    return Stage(
        name=name,
        modules=("repro.sim.rng",),
        encode=lambda artifact: dict(artifact),
        decode=lambda payload: dict(payload),
    )


class CountingCompute:
    def __init__(self, value):
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return {"value": self.value}


class DictCursor(StateCursor):
    """A fake mutable stream: one counter the stage advances."""

    def __init__(self):
        self.state = {"draws": 0}

    def capture(self):
        return dict(self.state)

    def restore(self, state):
        self.state = dict(state)


class TestCheckpoint:
    def test_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        compute = CountingCompute(7)
        first = store.run(make_stage(), {"seed": 1}, compute)
        second = store.run(make_stage(), {"seed": 1}, compute)
        assert first == second == {"value": 7}
        assert compute.calls == 1
        events = [e["event"] for e in store.ledger.entries()]
        assert events == ["miss", "hit"]

    def test_config_change_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        compute = CountingCompute(7)
        store.run(make_stage(), {"seed": 1}, compute)
        store.run(make_stage(), {"seed": 2}, compute)
        assert compute.calls == 2

    def test_hit_survives_process_restart(self, tmp_path):
        cold = ArtifactStore(tmp_path / "s")
        cold.run(make_stage(), {"seed": 1}, CountingCompute(7))
        warm = ArtifactStore(tmp_path / "s")
        compute = CountingCompute(99)
        assert warm.run(make_stage(), {"seed": 1}, compute) == {"value": 7}
        assert compute.calls == 0
        assert warm.run_id != cold.run_id

    def test_counters_land_on_the_observer(self, tmp_path):
        observer = Observer()
        store = ArtifactStore(tmp_path / "s", observer=observer)
        compute = CountingCompute(7)
        store.run(make_stage(), {"seed": 1}, compute)
        store.run(make_stage(), {"seed": 1}, compute)
        registry = observer.registry
        assert registry.counter("store_misses_total", stage="double").value == 1
        assert registry.counter("store_hits_total", stage="double").value == 1
        assert registry.counter("store_bytes_written_total").value > 0

    def test_cursor_restored_on_hit(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        cursor = DictCursor()

        def compute():
            cursor.state["draws"] += 5
            return {"value": 1}

        store.run(make_stage(), {"seed": 1}, compute, cursor=cursor)
        assert cursor.state == {"draws": 5}

        # A replay must leave the stream exactly where the compute did.
        replay_cursor = DictCursor()
        replay = ArtifactStore(tmp_path / "s")
        replay.run(
            make_stage(), {"seed": 1}, compute, cursor=replay_cursor
        )
        assert replay_cursor.state == {"draws": 5}

    def test_different_start_cursor_is_a_different_key(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        cursor = DictCursor()
        compute = CountingCompute(1)
        store.run(make_stage(), {"seed": 1}, compute, cursor=cursor)
        cursor.state["draws"] = 42  # the stream moved between stages
        store.run(make_stage(), {"seed": 1}, compute, cursor=cursor)
        assert compute.calls == 2

    def test_upstream_chains_content_digests(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        downstream = CountingCompute(2)
        store.run(make_stage("a"), {"seed": 1}, CountingCompute(1))
        store.run(
            make_stage("b"), {"seed": 1}, downstream, upstream=("a",)
        )
        assert downstream.calls == 1

        # Same downstream config, different upstream artifact → recompute.
        other = ArtifactStore(tmp_path / "s")
        other_downstream = CountingCompute(2)
        other.run(make_stage("a"), {"seed": 9}, CountingCompute(5))
        other.run(
            make_stage("b"), {"seed": 1}, other_downstream, upstream=("a",)
        )
        assert other_downstream.calls == 1  # a miss, not a stale hit

    def test_upstream_must_have_run_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        with pytest.raises(StoreError, match="dependency order"):
            store.run(
                make_stage("b"), {}, CountingCompute(1), upstream=("a",)
            )


class TestCorruption:
    def _corrupt_only_object(self, store):
        digest = next(store.cas.iter_digests())
        path = store.cas.path_of(digest)
        path.write_bytes(path.read_bytes()[:-6])
        return digest

    def test_corrupt_object_recomputes_and_heals(self, tmp_path):
        observer = Observer()
        cold = ArtifactStore(tmp_path / "s")
        cold.run(make_stage(), {"seed": 1}, CountingCompute(7))
        self._corrupt_only_object(cold)

        warm = ArtifactStore(tmp_path / "s", observer=observer)
        compute = CountingCompute(7)
        assert warm.run(make_stage(), {"seed": 1}, compute) == {"value": 7}
        assert compute.calls == 1
        assert (
            observer.registry.counter("store_corrupt_total", stage="double").value
            == 1
        )
        events = [e["event"] for e in warm.ledger.entries()]
        assert events == ["miss", "corrupt", "miss"]

        # The recompute overwrote the damage: a third run hits cleanly.
        healed = ArtifactStore(tmp_path / "s")
        compute_again = CountingCompute(7)
        healed.run(make_stage(), {"seed": 1}, compute_again)
        assert compute_again.calls == 0

    def test_undecodable_artifact_counts_as_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.run(make_stage(), {"seed": 1}, CountingCompute(7))

        exploding = Stage(
            name="double",
            modules=("repro.sim.rng",),
            encode=lambda artifact: dict(artifact),
            decode=lambda payload: (_ for _ in ()).throw(KeyError("gone")),
        )
        compute = CountingCompute(7)
        assert store.run(exploding, {"seed": 1}, compute) == {"value": 7}
        assert compute.calls == 1
        assert "corrupt" in [e["event"] for e in store.ledger.entries()]


class TestLedger:
    def test_run_ids_are_deterministic(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        assert ledger.next_run_id() == "run-000001"
        ledger.append("run-000001", "scan", "miss", "k")
        assert ledger.next_run_id() == "run-000002"

    def test_unknown_event_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown ledger event"):
            Ledger(tmp_path / "l.jsonl").append("run-000001", "scan", "boom", "k")

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        ledger.append("run-000001", "scan", "miss", "k")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"run": "run-0000')  # writer killed mid-append
        assert len(list(ledger.entries())) == 1
        assert ledger.next_run_id() == "run-000002"

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        ledger.append("run-000001", "scan", "miss", "k")
        with path.open("a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        ledger.append("run-000002", "scan", "hit", "k")
        with pytest.raises(StoreError, match="corrupt"):
            list(ledger.entries())

    def test_run_summaries_aggregate(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.run(make_stage("a"), {}, CountingCompute(1))
        store.run(make_stage("b"), {}, CountingCompute(2))
        store.run(make_stage("a"), {}, CountingCompute(1))
        (summary,) = store.ledger.run_summaries()
        assert summary["hits"] == 1
        assert summary["misses"] == 2
        assert summary["stages"] == ["a", "b"]
        assert summary["bytes_written"] > 0


class TestAdmin:
    def _seeded_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        store.run(make_stage("a"), {"seed": 1}, CountingCompute(1))
        store.run(make_stage("b"), {"seed": 1}, CountingCompute(2))
        return store

    def test_ls_renders_runs_and_artifacts(self, tmp_path):
        store = self._seeded_store(tmp_path)
        text = "\n".join(ls_lines(store))
        assert "run-000001" in text
        assert "misses=2" in text
        assert "artifacts: 2" in text

    def test_gc_reclaims_unreferenced_objects(self, tmp_path):
        store = self._seeded_store(tmp_path)
        # Re-key stage a: its old object loses its only index reference.
        store.run(make_stage("a"), {"seed": 2}, CountingCompute(3))
        entry = next(e for e in iter_index(store) if e.stage == "a")
        entry.path.unlink()
        removed, freed = gc(store)
        assert removed >= 1
        assert freed > 0
        assert verify(store) == []

    def test_gc_keeps_referenced_objects(self, tmp_path):
        store = self._seeded_store(tmp_path)
        assert gc(store) == (0, 0)
        assert len(list(store.cas.iter_digests())) == 2

    def test_verify_reports_corruption(self, tmp_path):
        store = self._seeded_store(tmp_path)
        assert verify(store) == []
        digest = next(store.cas.iter_digests())
        path = store.cas.path_of(digest)
        path.write_bytes(b'{"tampered": true}')
        problems = verify(store)
        assert len(problems) == 1
        assert "corrupt object" in problems[0]

    def test_verify_reports_missing_objects(self, tmp_path):
        store = self._seeded_store(tmp_path)
        digest = next(store.cas.iter_digests())
        store.cas.delete(digest)
        problems = verify(store)
        assert any("missing object" in problem for problem in problems)

    def test_index_entries_are_canonical_json(self, tmp_path):
        store = self._seeded_store(tmp_path)
        for entry in iter_index(store):
            parsed = json.loads(entry.path.read_text(encoding="utf-8"))
            assert parsed["kind"] == "store-index"
            assert parsed["object"] == entry.object_digest


class TestConfig:
    def test_explicit_wins_over_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        assert resolve_store_dir(str(tmp_path / "cli")) == str(tmp_path / "cli")

    def test_environment_is_the_ambient_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        store = open_store(None)
        assert store is not None
        assert store.root == tmp_path / "env"

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert resolve_store_dir(None) is None
        assert open_store(None) is None

    def test_blank_environment_means_off(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "   ")
        assert open_store(None) is None
