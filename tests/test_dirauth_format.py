"""Tests for repro.dirauth.format — consensus text round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dirauth.format import (
    archive_from_consensuses,
    format_archive,
    format_consensus,
    parse_archive,
    parse_consensus,
)
from repro.errors import ConsensusError
from tests.test_dirauth_archive import make_consensus


class TestConsensusRoundtrip:
    def test_roundtrip_preserves_entries(self):
        consensus = make_consensus(1000, seeds=(1, 2, 3))
        clone = parse_consensus(format_consensus(consensus))
        assert clone.valid_after == consensus.valid_after
        assert len(clone) == len(consensus)
        for original, parsed in zip(consensus.entries, clone.entries):
            assert parsed == original

    def test_roundtrip_network_consensus(self, network):
        """A realistic consensus (150 relays, mixed flags) survives."""
        consensus = network.consensus
        clone = parse_consensus(format_consensus(consensus))
        assert len(clone) == len(consensus)
        assert clone.hsdir_count == consensus.hsdir_count
        for entry in consensus.entries:
            assert clone.entry_for(entry.fingerprint) == entry

    def test_header_checked(self):
        with pytest.raises(ConsensusError):
            parse_consensus("bogus\nvalid-after 2013-01-01\ndirectory-footer")

    def test_footer_checked(self):
        text = format_consensus(make_consensus(0)).replace("directory-footer", "")
        with pytest.raises(ConsensusError):
            parse_consensus(text)

    def test_malformed_router_line(self):
        text = (
            "network-status-version 3 repro\n"
            "valid-after 2013-01-01 00:00:00\n"
            "r broken\n"
            "s Running\n"
            "directory-footer\n"
        )
        with pytest.raises(ConsensusError):
            parse_consensus(text)

    def test_unknown_flag_rejected(self):
        text = format_consensus(make_consensus(5, seeds=(1,)))
        with pytest.raises(ConsensusError):
            parse_consensus(text.replace("s Running", "s Wizard"))

    def test_bad_fingerprint_rejected(self):
        text = format_consensus(make_consensus(5, seeds=(1,)))
        import re

        broken = re.sub(r"^r (\S+) \S+", r"r \1 NOTHEX", text, count=1, flags=re.M)
        with pytest.raises(ConsensusError):
            parse_consensus(broken)

    @settings(max_examples=20)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=6, unique=True))
    def test_roundtrip_property(self, seeds):
        consensus = make_consensus(777, seeds=tuple(seeds))
        clone = parse_consensus(format_consensus(consensus))
        assert clone.entries == consensus.entries


class TestArchiveRoundtrip:
    def test_roundtrip(self):
        archive = archive_from_consensuses(
            [make_consensus(t, seeds=(t % 5,)) for t in (100, 200, 300)]
        )
        clone = parse_archive(format_archive(archive))
        assert len(clone) == 3
        assert clone.span == archive.span
        assert clone.at(250).valid_after == 200

    def test_first_seen_rebuilt(self):
        archive = archive_from_consensuses(
            [make_consensus(100, seeds=(1,)), make_consensus(200, seeds=(1, 2))]
        )
        clone = parse_archive(format_archive(archive))
        import random

        from repro.crypto.keys import KeyPair

        fp2 = KeyPair.generate(random.Random(2)).fingerprint
        assert clone.first_seen(fp2) == 200

    def test_trailing_garbage_rejected(self):
        text = format_archive(
            archive_from_consensuses([make_consensus(100, seeds=(1,))])
        )
        with pytest.raises(ConsensusError):
            parse_archive(text + "\nr leftover line")

    def test_empty_text_gives_empty_archive(self):
        assert len(parse_archive("")) == 0
