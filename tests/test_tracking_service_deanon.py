"""Tests for repro.tracking.service_deanon — the §II.B operator attack."""

import pytest

from repro.crypto.keys import KeyPair
from repro.hs.service import HiddenService
from repro.net.endpoint import ServiceEndpoint
from repro.sim.clock import DAY
from repro.sim.rng import derive_rng
from repro.tracking import ServiceDeanonAttack, deploy_attacker_guards


@pytest.fixture()
def staged(network_and_pool):
    """A target service, attacker guards, and attacker-owned HSDirs."""
    network, pool = network_and_pool
    rng = derive_rng(66, "svc")
    service = HiddenService(
        keypair=KeyPair.generate(rng), online_from=0, operator_ip=0xDEAD1001
    )
    service.host.add_endpoint(ServiceEndpoint(port=80))
    guards = deploy_attacker_guards(
        network, 8, derive_rng(66, "g"), bandwidth=9000, address_pool=pool
    )
    network.rebuild_consensus(network.clock.now)
    hsdir_ids = {
        network.relay_for_fingerprint(fp).relay_id
        for fp in network.responsible_set(service.onion)
    }
    attack = ServiceDeanonAttack(
        hsdir_relay_ids=hsdir_ids,
        guard_fingerprints=frozenset(g.fingerprint for g in guards),
        target_onions={service.onion},
        rng=derive_rng(66, "sig"),
    )
    attack.attach(network)
    return network, service, guards, attack


class TestServiceDeanonAttack:
    def test_publishes_observed_at_attacker_directories(self, staged):
        network, service, guards, attack = staged
        network.publish_service(service)
        assert attack.target_publishes_seen >= 1
        assert attack.signatures_injected == attack.target_publishes_seen

    def test_capture_requires_attacker_guard(self, staged):
        network, service, guards, attack = staged
        # Pin the service behind an attacker guard.
        service.ensure_guards(network)
        service._guards._slots[0].fingerprint = guards[0].fingerprint
        for _ in range(20):
            network.publish_service(service)
        assert attack.captures
        assert attack.ip_of(service.onion) == 0xDEAD1001

    def test_no_capture_without_attacker_guard(self, staged):
        network, service, guards, attack = staged
        guard_fps = {g.fingerprint for g in guards}
        service.ensure_guards(network)
        # Evict any attacker guard from the service's set.
        honest = [
            entry.fingerprint
            for entry in network.consensus.entries
            if entry.fingerprint not in guard_fps
        ]
        for slot, replacement in zip(service._guards._slots, honest):
            if slot.fingerprint in guard_fps:
                slot.fingerprint = replacement
        for _ in range(20):
            network.publish_service(service)
        assert not attack.captures

    def test_untargeted_service_ignored(self, staged):
        network, service, guards, attack = staged
        rng = derive_rng(67, "other")
        other = HiddenService(
            keypair=KeyPair.generate(rng), online_from=0, operator_ip=0x5
        )
        injected_before = attack.signatures_injected
        network.publish_service(other)
        assert attack.signatures_injected == injected_before
        assert attack.ip_of(other.onion) is None

    def test_no_false_positives_from_honest_publishes(self, staged):
        network, service, guards, attack = staged
        rng = derive_rng(68, "bulk")
        bulk = [
            HiddenService(keypair=KeyPair.generate(rng), online_from=0)
            for _ in range(30)
        ]
        for svc in bulk:
            network.publish_service(svc)
        assert attack.false_positives == 0

    def test_guard_rotation_eventually_captures(self, staged):
        """The waiting game: across guard rotations the attacker's share
        keeps getting re-rolled, so captures arrive with time."""
        network, service, guards, attack = staged
        captured = False
        for cycle in range(30):
            # Force a full guard expiry between cycles.
            service._guards = None
            network.clock.advance_by(61 * DAY)
            network.rebuild_consensus()
            # The attacker re-positions onto the target's *current*
            # responsible set (descriptor IDs rotated with the calendar).
            attack.hsdir_relay_ids = {
                network.relay_for_fingerprint(fp).relay_id
                for fp in network.responsible_set(service.onion)
            }
            network.publish_service(service)
            if attack.captures:
                captured = True
                break
        assert captured

    def test_deanonymized_services_listing(self, staged):
        network, service, guards, attack = staged
        service.ensure_guards(network)
        service._guards._slots[0].fingerprint = guards[0].fingerprint
        for _ in range(10):
            network.publish_service(service)
        assert service.onion in attack.deanonymized_services
