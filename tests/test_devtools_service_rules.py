"""Lint rules guarding the service plane: REP015 and the REP006 layer."""

import textwrap

from repro.devtools import run_lint

from tests.test_devtools_lint import lint_source, write_package


class TestRep015RawNetwork:
    def test_flags_socket_import(self, tmp_path):
        findings = lint_source(
            tmp_path, "import socket\n", rules=["REP015"]
        )
        assert [finding.rule for finding in findings] == ["REP015"]
        assert "raw network import 'socket'" in findings[0].message
        assert "repro.service" in findings[0].message

    def test_flags_http_server_from_import(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from http.server import ThreadingHTTPServer\n",
            rules=["REP015"],
        )
        assert [finding.rule for finding in findings] == ["REP015"]
        assert "'http.server'" in findings[0].message

    def test_flags_socketserver_and_asyncio(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import socketserver\nimport asyncio\n",
            rules=["REP015"],
        )
        assert [finding.rule for finding in findings] == ["REP015", "REP015"]
        assert [finding.line for finding in findings] == [1, 2]

    def test_non_network_imports_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import json\nimport threading\nfrom pathlib import Path\n",
            rules=["REP015"],
        )
        assert findings == []

    def test_http_client_inside_function_is_still_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            textwrap.dedent(
                """
                def fetch():
                    import http.client
                    return http.client
                """
            ),
            rules=["REP015"],
        )
        assert [finding.rule for finding in findings] == ["REP015"]

    def test_repro_service_files_are_exempt(self, tmp_path):
        target = tmp_path / "repro" / "service" / "frontend.py"
        target.parent.mkdir(parents=True)
        target.write_text("import socket\nfrom http.server import HTTPServer\n")
        findings = run_lint([str(target)], rule_ids=["REP015"]).findings
        assert findings == []

    def test_test_trees_are_exempt(self, tmp_path):
        target = tmp_path / "tests" / "test_wire.py"
        target.parent.mkdir(parents=True)
        target.write_text("import http.client\n")
        findings = run_lint([str(target)], rule_ids=["REP015"]).findings
        assert findings == []


class TestRep006ServiceLayer:
    def test_substrate_importing_service_is_a_layer_violation(self, tmp_path):
        write_package(
            tmp_path / "pkg",
            {
                "store/checkpoint.py": "from pkg.service import api\n",
                "service/api.py": "X = 1\n",
            },
        )
        findings = run_lint(
            [str(tmp_path / "pkg")], rule_ids=["REP006"]
        ).findings
        assert len(findings) == 1
        assert "layer violation" in findings[0].message
        assert "service" in findings[0].message

    def test_service_importing_substrates_is_clean(self, tmp_path):
        write_package(
            tmp_path / "pkg",
            {
                "service/controller.py": (
                    "from pkg.store import checkpoint\n"
                    "from pkg.supervise import harness\n"
                ),
                "store/checkpoint.py": "X = 1\n",
                "supervise/harness.py": "Y = 2\n",
            },
        )
        findings = run_lint(
            [str(tmp_path / "pkg")], rule_ids=["REP006"]
        ).findings
        assert findings == []


class TestRealTreeIsClean:
    def test_src_repro_has_no_rep015_findings(self):
        import os

        src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
        findings = run_lint([src], rule_ids=["REP015"]).findings
        assert findings == []
