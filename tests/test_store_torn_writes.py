"""Torn-write hardening of the store: ledger tails and commit crash points.

A process killed mid-append must never corrupt the audit trail for
everyone after it: a final line with no trailing newline is an append
that *never committed* — loaded ledgers skip it (the run id stays
monotonic) and the next append truncates it before writing, so the torn
fragment can never concatenate into mid-file corruption.  The store's
commit-point hooks are also covered here: a death between CAS put and
index write, or between index write and ledger append, must leave the
directory in a state the next run heals by itself.
"""

import json

import pytest

from repro.errors import StoreError
from repro.store import (
    LEDGER_APPEND_POINT,
    STORE_COMMIT_POINT,
    ArtifactStore,
    Ledger,
    Stage,
)

VALID_LINE = (
    '{"bytes":0,"event":"miss","key":"k1","object":"o1","run":"run-000001",'
    '"sim_seconds":3,"stage":"scan"}'
)


def make_stage(name="demo"):
    return Stage(
        name=name,
        modules=("json",),
        encode=lambda value: {"value": value},
        decode=lambda payload: payload["value"],
    )


class TestTornTail:
    def test_torn_tail_is_skipped_with_a_warning(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(VALID_LINE + "\n" + '{"run": "run-0000')
        ledger = Ledger(path)
        with pytest.warns(UserWarning, match="torn line"):
            entries = list(ledger.entries())
        assert [e["run"] for e in entries] == ["run-000001"]

    def test_torn_tail_that_parses_is_still_skipped(self, tmp_path):
        # No trailing newline = the append never committed, even when the
        # fragment happens to be complete JSON: counting it would make the
        # next run id non-monotonic against the healed file.
        path = tmp_path / "ledger.jsonl"
        torn = VALID_LINE.replace("run-000001", "run-000007")
        path.write_text(VALID_LINE + "\n" + torn)
        ledger = Ledger(path)
        with pytest.warns(UserWarning, match="torn line"):
            assert len(list(ledger.entries())) == 1
        with pytest.warns(UserWarning):
            assert ledger.next_run_id() == "run-000002"

    def test_append_heals_the_torn_tail_first(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(VALID_LINE + "\n" + '{"torn": ')
        ledger = Ledger(path)
        with pytest.warns(UserWarning, match="truncating"):
            ledger.append("run-000002", "scan", "hit", "k2")
        text = path.read_text()
        assert '{"torn"' not in text
        lines = [json.loads(line) for line in text.splitlines()]
        assert [entry["run"] for entry in lines] == ["run-000001", "run-000002"]
        # The healed file parses cleanly — no warning this time.
        assert len(list(ledger.entries())) == 2

    def test_wholly_torn_single_line_file_heals_to_empty(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"never": "committed"')
        ledger = Ledger(path)
        with pytest.warns(UserWarning):
            assert list(ledger.entries()) == []
        with pytest.warns(UserWarning):
            assert ledger.next_run_id() == "run-000001"

    def test_midfile_corruption_still_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("not json at all\n" + VALID_LINE + "\n")
        with pytest.raises(StoreError):
            list(Ledger(path).entries())

    def test_newline_terminated_garbage_is_corruption_not_torn(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(VALID_LINE + "\n" + "half a reco\n")
        with pytest.raises(StoreError):
            list(Ledger(path).entries())

    def test_clean_ledger_round_trip_is_warning_free(self, tmp_path, recwarn):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append("run-000001", "scan", "miss", "k1", sim_seconds=2)
        ledger.append("run-000001", "crawl", "hit", "k2")
        assert [e["stage"] for e in ledger.entries()] == ["scan", "crawl"]
        assert ledger.next_run_id() == "run-000002"
        assert not [w for w in recwarn if "torn" in str(w.message)]


class TestCommitCrashPoints:
    def run_once(self, root, crash_point=None, value="artifact"):
        store = ArtifactStore(root)
        store.crash_point = crash_point
        result = store.run(make_stage(), {"cfg": 1}, lambda: value)
        return store, result

    def test_labels_fire_in_commit_order(self, tmp_path):
        labels = []
        self.run_once(tmp_path / "store", crash_point=labels.append)
        assert labels == [STORE_COMMIT_POINT, LEDGER_APPEND_POINT]

    def test_death_at_store_commit_recovers_as_a_recompute(self, tmp_path):
        root = tmp_path / "store"

        class Die(Exception):
            pass

        def die_at_commit(label):
            if label == STORE_COMMIT_POINT:
                raise Die(label)

        with pytest.raises(Die):
            self.run_once(root, crash_point=die_at_commit)
        # The object landed in the CAS but no index entry names it; the
        # next incarnation misses, recomputes, and re-puts idempotently.
        store, result = self.run_once(root)
        assert result == "artifact"
        events = [e["event"] for e in store.ledger.entries()]
        assert events == ["miss"]

    def test_death_at_ledger_append_recovers_as_a_hit(self, tmp_path):
        root = tmp_path / "store"

        class Die(Exception):
            pass

        def die_at_append(label):
            if label == LEDGER_APPEND_POINT:
                raise Die(label)

        with pytest.raises(Die):
            self.run_once(root, crash_point=die_at_append)
        # The index entry committed before the death, so the restart is a
        # hit — consistent with the artifact already being trustworthy.
        compute_calls = []
        store = ArtifactStore(root)
        result = store.run(
            make_stage(),
            {"cfg": 1},
            lambda: compute_calls.append(1) or "artifact",
        )
        assert result == "artifact"
        assert compute_calls == []
        events = [e["event"] for e in store.ledger.entries()]
        assert events == ["hit"]
