"""Tests for repro.crawl — crawler, page model, exclusion funnel."""

import pytest

from repro.crawl import apply_exclusions
from repro.crawl.crawler import Crawler, CrawlResults
from repro.crawl.filters import MIN_WORDS, destinations_summary
from repro.crawl.page import FetchedPage, PageKind
from repro.errors import CrawlError
from repro.net.transport import TorTransport
from repro.population.spec import PORT_SKYNET
from repro.sim.rng import derive_rng


def make_page(port=80, kind=PageKind.HTML, text="", status=200, onion="a" * 16 + ".onion"):
    return FetchedPage(
        onion=onion, port=port, scheme="http", kind=kind, status=status, text=text
    )


class TestFetchedPage:
    def test_word_count(self):
        assert make_page(text="one two three").word_count == 3

    def test_connected(self):
        assert make_page(kind=PageKind.HTML).connected
        assert make_page(kind=PageKind.BANNER).connected
        assert not make_page(kind=PageKind.DEAD).connected
        assert not make_page(kind=PageKind.NO_RESPONSE).connected


class TestPageIndex:
    def test_page_for_uses_the_index(self):
        results = CrawlResults()
        first = make_page(text="first")
        results.add_page(first)
        assert results.page_for(first.onion, first.port) is first

    def test_first_page_wins_for_a_duplicate_destination(self):
        results = CrawlResults()
        first = make_page(text="first")
        second = make_page(text="second")
        results.add_page(first)
        results.add_page(second)
        assert results.page_for(first.onion, first.port) is first

    def test_direct_appends_are_picked_up_lazily(self):
        # The exclusion funnel builds CrawlResults by appending to .pages
        # directly; page_for must rebuild its index and still find them.
        results = CrawlResults(pages=[make_page(text="seeded")])
        assert results.page_for("a" * 16 + ".onion", 80).text == "seeded"
        late = make_page(onion="b" * 16 + ".onion", text="late")
        results.pages.append(late)
        assert results.page_for(late.onion, late.port) is late

    def test_unknown_destination_raises(self):
        results = CrawlResults(pages=[make_page()])
        with pytest.raises(CrawlError):
            results.page_for("c" * 16 + ".onion", 443)


class TestExclusionFunnel:
    def test_short_pages_excluded(self):
        results = CrawlResults(pages=[make_page(text="too short")])
        out = apply_exclusions(results)
        assert out.short_excluded == 1
        assert out.classified_count == 0

    def test_ssh_banners_counted_separately(self):
        results = CrawlResults(
            pages=[make_page(port=22, kind=PageKind.BANNER, text="SSH-2.0-X")]
        )
        out = apply_exclusions(results)
        assert out.short_excluded == 1
        assert out.ssh_banner_excluded == 1

    def test_duplicate_443_excluded(self):
        text = "word " * MIN_WORDS
        results = CrawlResults(
            pages=[
                make_page(port=80, text=text),
                make_page(port=443, text=text),
            ]
        )
        out = apply_exclusions(results)
        assert out.duplicate_443_excluded == 1
        assert out.classified_count == 1

    def test_different_443_content_kept(self):
        results = CrawlResults(
            pages=[
                make_page(port=80, text="alpha " * MIN_WORDS),
                make_page(port=443, text="beta " * MIN_WORDS),
            ]
        )
        out = apply_exclusions(results)
        assert out.duplicate_443_excluded == 0
        assert out.classified_count == 2

    def test_error_pages_excluded(self):
        text = "Error 404 Not Found " * 10
        results = CrawlResults(pages=[make_page(text=text)])
        out = apply_exclusions(results)
        assert out.error_page_excluded == 1

    def test_http_error_status_excluded(self):
        text = "perfectly fine words " * 10
        results = CrawlResults(pages=[make_page(text=text, status=503)])
        out = apply_exclusions(results)
        assert out.error_page_excluded == 1

    def test_good_page_survives(self):
        text = "chess server with openings and endgames " * 5
        results = CrawlResults(pages=[make_page(text=text)])
        out = apply_exclusions(results)
        assert out.classified_count == 1
        assert out.total_excluded == 0

    def test_dead_pages_ignored(self):
        results = CrawlResults(pages=[make_page(kind=PageKind.DEAD)])
        out = apply_exclusions(results)
        assert out.classified_count == 0
        assert out.total_excluded == 0


class TestDestinationsSummary:
    def test_port_buckets(self):
        results = CrawlResults(
            pages=[
                make_page(port=80, text="x"),
                make_page(port=443, text="x"),
                make_page(port=22, kind=PageKind.BANNER, text="b"),
                make_page(port=8080, text="x"),
                make_page(port=12345, kind=PageKind.BANNER, text="b"),
                make_page(port=9999, kind=PageKind.DEAD),
            ]
        )
        rows = dict(destinations_summary(results))
        assert rows == {"80": 1, "443": 1, "22": 1, "8080": 1, "Other": 1}


class TestCrawlerIntegration:
    def test_crawl_funnel_on_small_world(self, small_population, small_pipeline):
        crawl = small_pipeline.crawl()
        assert crawl.tried > 0
        assert crawl.open_at_crawl <= crawl.tried
        assert crawl.connected <= crawl.open_at_crawl
        # Rough shape: ~87% open, ~92% of those connected (web-dominated).
        assert 0.7 <= crawl.open_at_crawl / crawl.tried <= 0.95

    def test_skynet_not_crawled(self, small_pipeline):
        crawl = small_pipeline.crawl()
        assert all(page.port != PORT_SKYNET for page in crawl.pages)

    def test_banner_pages_from_ssh(self, small_pipeline):
        crawl = small_pipeline.crawl()
        ssh_pages = [p for p in crawl.pages if p.port == 22 and p.connected]
        assert ssh_pages
        assert all(p.kind is PageKind.BANNER for p in ssh_pages)
        assert all(p.text.startswith("SSH-") for p in ssh_pages)

    def test_goldnet_pages_are_503(self, small_population, small_pipeline):
        crawl = small_pipeline.crawl()
        goldnet_onions = {
            record.onion for record in small_population.records_in_group("goldnet")
        }
        goldnet_pages = [p for p in crawl.pages if p.onion in goldnet_onions]
        assert goldnet_pages
        assert all(p.status == 503 for p in goldnet_pages)

    def test_unknown_destination_dead(self, small_population):
        transport = TorTransport(
            small_population.registry, derive_rng(9, "c")
        )
        crawler = Crawler(transport)
        results = crawler.crawl(
            [("zzzzzzzzzzzzzzzz.onion", 80)], when=small_population.crawl_date
        )
        assert results.pages[0].kind is PageKind.DEAD
