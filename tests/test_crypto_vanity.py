"""Tests for repro.crypto.vanity."""

import pytest

from repro.crypto.onion import onion_address_from_key
from repro.crypto.vanity import expected_attempts, grind_vanity_onion
from repro.errors import CryptoError
from repro.sim.rng import derive_rng


class TestExpectedAttempts:
    def test_single_char(self):
        assert expected_attempts("s") == 32

    def test_grows_by_32_per_char(self):
        assert expected_attempts("sil") == 32 * expected_attempts("si")


class TestGrinding:
    def test_prefix_achieved(self):
        keypair = grind_vanity_onion("si", derive_rng(1, "v"))
        assert onion_address_from_key(keypair.public_der).startswith("si")

    def test_fingerprint_is_genuine(self):
        """Vanity keys are real keys: fingerprint = SHA1(der)."""
        import hashlib

        keypair = grind_vanity_onion("a", derive_rng(2, "v"))
        assert keypair.fingerprint == hashlib.sha1(keypair.public_der).digest()

    def test_deterministic_per_stream(self):
        a = grind_vanity_onion("si", derive_rng(3, "v"))
        b = grind_vanity_onion("si", derive_rng(3, "v"))
        assert a.fingerprint == b.fingerprint

    def test_attempt_cap_respected(self):
        with pytest.raises(CryptoError):
            grind_vanity_onion("zzzz", derive_rng(4, "v"), max_attempts=5)

    def test_empty_prefix_rejected(self):
        with pytest.raises(CryptoError):
            grind_vanity_onion("", derive_rng(5, "v"))

    def test_long_prefix_rejected(self):
        with pytest.raises(CryptoError):
            grind_vanity_onion("silkroa", derive_rng(6, "v"))

    def test_invalid_characters_rejected(self):
        # 0 and 1 are not in the base32 alphabet.
        with pytest.raises(CryptoError):
            grind_vanity_onion("s1", derive_rng(7, "v"))


class TestPopulationPhishing:
    def test_phishing_clones_share_the_prefix(self, small_population):
        clones = small_population.records_in_group("silkroad-phishing")
        assert len(clones) == small_population.spec.silkroad_phishing_count
        for record in clones:
            assert record.onion.startswith("sil")
            assert record.topic == "counterfeit"

    def test_clones_are_distinct_services(self, small_population):
        clones = small_population.records_in_group("silkroad-phishing")
        onions = {record.onion for record in clones}
        assert len(onions) == len(clones)
        assert small_population.named_onions["silkroad"] not in onions
