"""Tests for repro.dirauth.archive."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.dirauth.archive import ConsensusArchive
from repro.dirauth.consensus import Consensus, ConsensusEntry
from repro.errors import ConsensusError
from repro.relay.flags import RelayFlags


def make_consensus(valid_after, seeds=(0,)):
    entries = []
    for seed in seeds:
        keypair = KeyPair.generate(random.Random(seed))
        entries.append(
            ConsensusEntry(
                fingerprint=keypair.fingerprint,
                nickname=f"r{seed}",
                ip=seed,
                or_port=9001,
                bandwidth=100,
                flags=RelayFlags.RUNNING,
            )
        )
    entries.sort(key=lambda e: e.fingerprint)
    return Consensus(valid_after=valid_after, entries=tuple(entries))


class TestAppend:
    def test_append_and_len(self):
        archive = ConsensusArchive()
        archive.append(make_consensus(100))
        archive.append(make_consensus(200))
        assert len(archive) == 2

    def test_must_be_strictly_newer(self):
        archive = ConsensusArchive()
        archive.append(make_consensus(100))
        with pytest.raises(ConsensusError):
            archive.append(make_consensus(100))
        with pytest.raises(ConsensusError):
            archive.append(make_consensus(50))

    def test_span(self):
        archive = ConsensusArchive()
        archive.append(make_consensus(100))
        archive.append(make_consensus(300))
        assert archive.span == (100, 300)

    def test_empty_span_raises(self):
        with pytest.raises(ConsensusError):
            ConsensusArchive().span


class TestLookup:
    def setup_method(self):
        self.archive = ConsensusArchive()
        for t in (100, 200, 300):
            self.archive.append(make_consensus(t))

    def test_at_exact(self):
        assert self.archive.at(200).valid_after == 200

    def test_at_between(self):
        assert self.archive.at(250).valid_after == 200

    def test_at_before_first(self):
        assert self.archive.at(50) is None

    def test_at_after_last(self):
        assert self.archive.at(10**9).valid_after == 300

    def test_between(self):
        window = self.archive.between(150, 300)
        assert [c.valid_after for c in window] == [200, 300]

    def test_between_empty(self):
        assert self.archive.between(400, 500) == []

    def test_iteration_in_order(self):
        assert [c.valid_after for c in self.archive] == [100, 200, 300]


class TestFirstSeen:
    def test_first_appearance_recorded(self):
        archive = ConsensusArchive()
        archive.append(make_consensus(100, seeds=(1,)))
        archive.append(make_consensus(200, seeds=(1, 2)))
        fp1 = KeyPair.generate(random.Random(1)).fingerprint
        fp2 = KeyPair.generate(random.Random(2)).fingerprint
        assert archive.first_seen(fp1) == 100
        assert archive.first_seen(fp2) == 200

    def test_unknown_fingerprint(self):
        assert ConsensusArchive().first_seen(b"\x00" * 20) is None

    def test_first_seen_not_updated_on_reappearance(self):
        archive = ConsensusArchive()
        archive.append(make_consensus(100, seeds=(1,)))
        archive.append(make_consensus(200, seeds=()))
        archive.append(make_consensus(300, seeds=(1,)))
        fp1 = KeyPair.generate(random.Random(1)).fingerprint
        assert archive.first_seen(fp1) == 100
