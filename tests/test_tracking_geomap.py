"""Tests for repro.tracking.geomap."""

import random

from repro.net.geoip import GeoIP
from repro.tracking.geomap import ClientGeoMap


class TestClientGeoMap:
    def setup_method(self):
        self.geoip = GeoIP(seed=1)
        self.geomap = ClientGeoMap(geoip=self.geoip)

    def test_add_and_count(self):
        rng = random.Random(0)
        ips = [self.geoip.random_ip(rng, "DE") for _ in range(5)]
        ips += [self.geoip.random_ip(rng, "US") for _ in range(3)]
        self.geomap.add_ips(ips)
        assert self.geomap.total_clients == 8
        assert dict(self.geomap.distribution())["DE"] == 5
        assert self.geomap.country_count == 2

    def test_shares_sum_to_one(self):
        rng = random.Random(1)
        self.geomap.add_ips(self.geoip.random_ip(rng) for _ in range(50))
        assert abs(sum(self.geomap.shares().values()) - 1.0) < 1e-9

    def test_empty_map(self):
        assert self.geomap.shares() == {}
        assert self.geomap.format_map() == "(no clients captured)"

    def test_format_map_ordered(self):
        rng = random.Random(2)
        self.geomap.add_ips([self.geoip.random_ip(rng, "FR") for _ in range(9)])
        self.geomap.add_ips([self.geoip.random_ip(rng, "JP")])
        lines = self.geomap.format_map().splitlines()
        assert lines[0].strip().startswith("FR")

    def test_recovered_distribution_matches_sampling(self):
        """Resolving IPs generated per country weights yields roughly the
        same weights back — Fig 3's correctness condition."""
        rng = random.Random(3)
        self.geomap.add_ips(self.geoip.random_ip(rng) for _ in range(4000))
        shares = self.geomap.shares()
        top = max(shares, key=shares.get)
        # US carries the largest weight in the default table.
        assert top == "US"
