"""Tests for repro.classify.topics — the Mallet/uClassify stand-in."""

import pytest

from repro.classify.topics import is_torhost_default
from repro.errors import ClassificationError
from repro.population.content import synth_topic_page
from repro.population.corpus import TOPICS, TORHOST_DEFAULT_PAGE
from repro.sim.rng import derive_rng


class TestTopicClassifier:
    def test_knows_all_18_topics(self, topic_classifier):
        assert sorted(topic_classifier.topics) == sorted(TOPICS)

    def test_accuracy_on_held_out_pages(self, topic_classifier):
        rng = derive_rng(88, "eval")
        correct = total = 0
        for topic in TOPICS:
            for _ in range(5):
                text = synth_topic_page(topic, rng, word_count=150)
                correct += topic_classifier.classify(text) == topic
                total += 1
        assert correct / total >= 0.9

    def test_robust_to_cross_topic_noise(self, topic_classifier):
        rng = derive_rng(89, "eval")
        noisy = synth_topic_page(
            "drugs", rng, word_count=200, topical_fraction=0.4, noise_fraction=0.25
        )
        assert topic_classifier.classify(noisy) == "drugs"

    def test_empty_rejected(self, topic_classifier):
        with pytest.raises(ClassificationError):
            topic_classifier.classify("")

    def test_confidence(self, topic_classifier):
        rng = derive_rng(90, "eval")
        text = synth_topic_page("weapon", rng, word_count=150)
        topic, confidence = topic_classifier.classify_with_confidence(text)
        assert topic == "weapon"
        assert confidence > 0.5


class TestTorhostDefaultDetection:
    def test_exact_page_detected(self):
        assert is_torhost_default(TORHOST_DEFAULT_PAGE)

    def test_whitespace_invariant(self):
        mangled = "  " + TORHOST_DEFAULT_PAGE.replace(" ", "   ") + " "
        assert is_torhost_default(mangled)

    def test_ordinary_page_not_default(self):
        assert not is_torhost_default("a chess club on the onion network " * 3)

    def test_mention_alone_not_enough(self):
        assert not is_torhost_default("I migrated away from torhost last year")
