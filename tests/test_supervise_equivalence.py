"""Crash-resume equivalence on the real campaign.

The invariant the supervision plane exists to defend: a run that was
killed mid-campaign and resumed through store checkpoints produces
fig1/table1/fig2 reports **byte-identical** to a clean cold run that
never died.  The matrix here injects a death at every stage boundary,
at shard merges, and at both store commit points, across worker counts
and fault profiles, and byte-compares against clean baselines.
"""

import json

import pytest

from repro.cli import _campaign_document
from repro.experiments.pipeline import MeasurementPipeline
from repro.experiments import pipeline as pipeline_module
from repro.population import generate_population
from repro.store import ArtifactStore
from repro.supervise import (
    LEDGER_APPEND,
    PIPELINE_STAGES,
    PMAP_SHARD,
    STORE_COMMIT,
    CrashPlan,
    CrashRule,
    EpochSupervisor,
    build_crash_plan,
    stage_enter,
    stage_exit,
)

SEED = 11
SCALE = 0.02

#: Every stage boundary of the standard campaign: 8 distinct labels.
BOUNDARIES = [stage_enter(s) for s in PIPELINE_STAGES] + [
    stage_exit(s) for s in PIPELINE_STAGES
]


def campaign_text(pipeline):
    """The byte string the equivalence claim is about."""
    return json.dumps(_campaign_document(pipeline), indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def equivalence_population():
    return generate_population(seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def clean_text(equivalence_population, language_detector, topic_classifier):
    """Per-(workers, fault_profile) clean cold baselines, computed once."""
    cache = {}

    def get(workers, fault_profile):
        key = (workers, fault_profile)
        if key not in cache:
            pipeline = MeasurementPipeline(
                seed=SEED,
                population=equivalence_population,
                workers=workers,
                fault_profile=fault_profile,
            )
            pipeline._language_detector = language_detector
            pipeline._topic_classifier = topic_classifier
            for stage in PIPELINE_STAGES:
                getattr(pipeline, stage)()
            cache[key] = campaign_text(pipeline)
        return cache[key]

    return get


@pytest.fixture()
def supervised(tmp_path, equivalence_population, language_detector, topic_classifier):
    """Run the campaign under a crash plan; returns the outcome."""

    def run(plan, workers=1, fault_profile="none"):
        store_root = tmp_path / "store"

        def factory(crash_points, quarantine):
            pipeline = MeasurementPipeline(
                seed=SEED,
                population=equivalence_population,
                workers=workers,
                fault_profile=fault_profile,
                store=ArtifactStore(store_root),
                crash_point=crash_points,
                quarantine=quarantine,
            )
            pipeline._language_detector = language_detector
            pipeline._topic_classifier = topic_classifier
            return pipeline

        return EpochSupervisor(plan).run(factory)

    return run


def single_crash_plan(label):
    return CrashPlan(seed=SEED, rules=(CrashRule(label, 1),), name="custom")


class TestStageBoundaryMatrix:
    @pytest.mark.parametrize("fault_profile", ["none", "moderate"])
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("boundary", BOUNDARIES)
    def test_crash_resume_is_byte_identical(
        self, supervised, clean_text, boundary, workers, fault_profile
    ):
        outcome = supervised(
            single_crash_plan(boundary),
            workers=workers,
            fault_profile=fault_profile,
        )
        manifest = outcome.manifest
        assert manifest.complete, manifest.summary_lines()
        assert manifest.restarts_used == 1
        assert [(e.point, e.visit) for e in manifest.crashes] == [(boundary, 1)]
        assert campaign_text(outcome.pipeline) == clean_text(workers, fault_profile)


class TestOtherCrashPoints:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_shard_boundary_crash(self, supervised, clean_text, workers):
        outcome = supervised(single_crash_plan(PMAP_SHARD), workers=workers)
        assert outcome.manifest.complete
        assert outcome.crash_points.distinct_points() == (PMAP_SHARD,)
        assert campaign_text(outcome.pipeline) == clean_text(workers, "none")

    def test_repeated_store_commit_crashes(self, supervised, clean_text):
        plan = CrashPlan(
            seed=SEED,
            rules=(CrashRule(STORE_COMMIT, 1), CrashRule(STORE_COMMIT, 2)),
            name="custom",
        )
        outcome = supervised(plan)
        assert outcome.manifest.complete
        assert outcome.manifest.restarts_used == 2
        assert campaign_text(outcome.pipeline) == clean_text(1, "none")

    def test_ledger_append_crash(self, supervised, clean_text):
        outcome = supervised(single_crash_plan(LEDGER_APPEND))
        assert outcome.manifest.complete
        assert campaign_text(outcome.pipeline) == clean_text(1, "none")


class TestModerateProfileAcceptance:
    def test_survives_five_plus_crashes_at_distinct_points(
        self, supervised, clean_text
    ):
        # The ``repro crashtest`` acceptance bar, exercised in-process:
        # >= 5 injected deaths at >= 5 distinct stage/shard/commit labels
        # in one supervised run, final reports byte-identical.
        outcome = supervised(build_crash_plan("moderate", seed=SEED))
        manifest = outcome.manifest
        assert manifest.complete, manifest.summary_lines()
        assert outcome.crash_points.crash_count >= 5
        assert len(outcome.crash_points.distinct_points()) >= 5
        assert campaign_text(outcome.pipeline) == clean_text(1, "none")


class TestQuarantineDegradation:
    def test_poisoned_page_degrades_by_exactly_that_page(
        self,
        supervised,
        equivalence_population,
        language_detector,
        topic_classifier,
        monkeypatch,
    ):
        # Find a page to poison, then classify through a wrapper that
        # refuses it: the supervised run must finish with the page
        # quarantined and declared — never abort, never pretend.
        probe = MeasurementPipeline(
            seed=SEED, population=equivalence_population, fault_profile="none"
        )
        pages = probe.classifiable().pages
        target = pages[0].destination
        real_classify = pipeline_module._classify_page

        def poisoned(page, observer=None, *, detector, classifier):
            if page.destination == target:
                raise ValueError("poisoned page")
            return real_classify(
                page, observer, detector=detector, classifier=classifier
            )

        monkeypatch.setattr(pipeline_module, "_classify_page", poisoned)
        outcome = supervised(CrashPlan(seed=SEED, name="none"))
        manifest = outcome.manifest
        assert not manifest.complete
        assert not manifest.degraded  # stages all ran; only items are missing
        assert [s.status for s in manifest.stages] == ["complete"] * 4
        assert len(manifest.quarantined_items) == 1
        assert manifest.quarantined_items[0]["error"].startswith("ValueError")
        classification = outcome.pipeline.classify()
        assert classification.classified_pages == len(pages) - 1
        assert target not in classification.page_languages
        observer = outcome.pipeline.observer
        assert (
            observer.registry.counter("classify_pages_quarantined_total").value
            == 1
        )
