"""Tests for the ``repro lint`` static-analysis engine (REP001–REP010, REP014)."""

import json
import os
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.devtools import run_lint
from repro.devtools.baseline import load_baseline, write_baseline
from repro.devtools.engine import iter_python_files, module_name_for, parse_file
from repro.errors import ConfigError
from repro.sim.rng import derive_rng, split_rng

REPRO_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def lint_source(tmp_path, source, rules=None, name="snippet.py"):
    """Lint one inline snippet; returns the findings list."""
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return run_lint([str(target)], rule_ids=rules).findings


def write_package(root, files):
    """Materialise ``{relative_path: source}`` as a package tree."""
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        # Every directory on the way down needs an __init__.py.
        probe = target.parent
        while probe != root.parent:
            init = probe / "__init__.py"
            if not init.exists():
                init.write_text("")
            probe = probe.parent


class TestRep001RawSeed:
    def test_flags_literal_seed(self, tmp_path):
        findings = lint_source(
            tmp_path, "import random\nrng = random.Random(0)\n", rules=["REP001"]
        )
        assert [f.rule for f in findings] == ["REP001"]
        assert findings[0].line == 2

    def test_flags_from_import_alias(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from random import Random as R\nrng = R(42)\n",
            rules=["REP001"],
        )
        assert [f.rule for f in findings] == ["REP001"]

    def test_derive_rng_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.sim.rng import derive_rng\nrng = derive_rng(0, 'a')\n",
            rules=["REP001"],
        )
        assert findings == []

    def test_sim_rng_module_is_allowlisted(self, tmp_path):
        rng_dir = tmp_path / "sim"
        rng_dir.mkdir()
        target = rng_dir / "rng.py"
        target.write_text("import random\nrng = random.Random(7)\n")
        assert run_lint([str(target)], rule_ids=["REP001"]).findings == []


class TestRep002AdHocSplit:
    def test_flags_getrandbits_reseed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random\n"
            "def f(rng):\n"
            "    return random.Random(rng.getrandbits(64))\n",
            rules=["REP001", "REP002"],
        )
        assert [f.rule for f in findings] == ["REP002"]

    def test_plain_getrandbits_draw_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(rng):\n    return rng.getrandbits(32)\n",
            rules=["REP002"],
        )
        assert findings == []


class TestRep003WallClock:
    @pytest.mark.parametrize(
        "call",
        [
            "time.time()",
            "datetime.now()",
            "datetime.utcnow()",
            "date.today()",
            "datetime.datetime.now()",
        ],
    )
    def test_flags_wall_clock(self, tmp_path, call):
        source = (
            "import time\nimport datetime\n"
            "from datetime import date, datetime\n"
            f"stamp = {call}\n"
        )
        findings = lint_source(tmp_path, source, rules=["REP003"])
        assert [f.rule for f in findings] == ["REP003"]

    def test_flags_bare_time_import(self, tmp_path):
        findings = lint_source(
            tmp_path, "from time import time\nstamp = time()\n", rules=["REP003"]
        )
        assert [f.rule for f in findings] == ["REP003"]

    def test_perf_counter_is_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import time\nelapsed = time.perf_counter()\n",
            rules=["REP003"],
        )
        assert findings == []


class TestRep004BuiltinRaise:
    @pytest.mark.parametrize(
        "exc", ["ValueError", "RuntimeError", "TypeError", "KeyError"]
    )
    def test_flags_builtin_raise(self, tmp_path, exc):
        findings = lint_source(
            tmp_path, f"def f():\n    raise {exc}('x')\n", rules=["REP004"]
        )
        assert [f.rule for f in findings] == ["REP004"]

    def test_repro_error_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from repro.errors import ConfigError\n"
            "def f():\n    raise ConfigError('x')\n",
            rules=["REP004"],
        )
        assert findings == []

    def test_bare_reraise_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        raise\n",
            rules=["REP004"],
        )
        assert findings == []


class TestRep005SetOrdering:
    def test_flags_list_of_set(self, tmp_path):
        findings = lint_source(
            tmp_path, "items = list(set([1, 2]))\n", rules=["REP005"]
        )
        assert [f.rule for f in findings] == ["REP005"]

    def test_flags_for_over_set_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "for item in set([1, 2]):\n    print(item)\n",
            rules=["REP005"],
        )
        assert [f.rule for f in findings] == ["REP005"]

    def test_flags_comprehension_over_set_literal(self, tmp_path):
        findings = lint_source(
            tmp_path, "out = [x for x in {1, 2}]\n", rules=["REP005"]
        )
        assert [f.rule for f in findings] == ["REP005"]

    def test_sorted_set_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "items = sorted(set([1, 2]))\n"
            "for item in sorted({3, 4}):\n    print(item)\n",
            rules=["REP005"],
        )
        assert findings == []

    def test_membership_test_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path, "hit = 3 in set([1, 2, 3])\n", rules=["REP005"]
        )
        assert findings == []


class TestRep006Layering:
    def test_flags_layer_violation(self, tmp_path):
        write_package(
            tmp_path / "pkg",
            {
                "crypto/keys.py": "from pkg.experiments import driver\n",
                "experiments/driver.py": "X = 1\n",
            },
        )
        findings = run_lint([str(tmp_path / "pkg")], rule_ids=["REP006"]).findings
        assert len(findings) == 1
        assert "layer violation" in findings[0].message
        assert "crypto" in findings[0].message

    def test_flags_import_cycle(self, tmp_path):
        write_package(
            tmp_path / "pkg",
            {
                "alpha.py": "import pkg.beta\n",
                "beta.py": "import pkg.alpha\n",
            },
        )
        findings = run_lint([str(tmp_path / "pkg")], rule_ids=["REP006"]).findings
        assert len(findings) == 1
        assert "import cycle" in findings[0].message
        assert "pkg.alpha" in findings[0].message and "pkg.beta" in findings[0].message

    def test_type_checking_imports_excluded(self, tmp_path):
        write_package(
            tmp_path / "pkg",
            {
                "alpha.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    import pkg.beta\n"
                ),
                "beta.py": "import pkg.alpha\n",
            },
        )
        assert run_lint([str(tmp_path / "pkg")], rule_ids=["REP006"]).findings == []

    def test_relative_imports_resolve(self, tmp_path):
        write_package(
            tmp_path / "pkg",
            {
                "sim/clock.py": "from ..trawl import harvest\n",
                "trawl/harvest.py": "X = 1\n",
            },
        )
        findings = run_lint([str(tmp_path / "pkg")], rule_ids=["REP006"]).findings
        assert len(findings) == 1
        assert "layer violation" in findings[0].message


class TestRep007RawConcurrency:
    @pytest.mark.parametrize(
        "source",
        [
            "import multiprocessing\n",
            "import concurrent.futures\n",
            "from multiprocessing import Pool\n",
            "from concurrent.futures import ProcessPoolExecutor\n",
            "import multiprocessing.pool as mp\n",
        ],
    )
    def test_flags_raw_concurrency_import(self, tmp_path, source):
        findings = lint_source(tmp_path, source, rules=["REP007"])
        assert len(findings) == 1
        assert findings[0].rule == "REP007"
        assert "repro.parallel.pmap" in findings[0].message

    def test_pmap_import_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path, "from repro.parallel import pmap\n", rules=["REP007"]
        )
        assert findings == []

    def test_unrelated_module_with_similar_prefix_is_clean(self, tmp_path):
        # Only the top-level modules count: ``concurrently`` is not
        # ``concurrent``.
        findings = lint_source(
            tmp_path, "import concurrently\n", rules=["REP007"]
        )
        assert findings == []

    def test_parallel_package_is_allowlisted(self, tmp_path):
        target = tmp_path / "repro" / "parallel" / "executor.py"
        target.parent.mkdir(parents=True)
        target.write_text("from concurrent import futures\n")
        findings = run_lint([str(target)], rule_ids=["REP007"]).findings
        assert findings == []


class TestRep008ExceptionSwallow:
    def test_flags_bare_except(self, tmp_path):
        source = """
        try:
            probe()
        except:
            handle()
        """
        findings = lint_source(tmp_path, source, rules=["REP008"])
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    @pytest.mark.parametrize("exc", ["Exception", "BaseException"])
    def test_flags_catch_all(self, tmp_path, exc):
        source = f"""
        try:
            probe()
        except {exc} as err:
            log(err)
        """
        findings = lint_source(tmp_path, source, rules=["REP008"])
        assert len(findings) == 1
        assert "repro.errors" in findings[0].message

    def test_flags_catch_all_inside_a_tuple(self, tmp_path):
        source = """
        try:
            probe()
        except (OSError, Exception):
            handle()
        """
        findings = lint_source(tmp_path, source, rules=["REP008"])
        assert len(findings) == 1

    def test_flags_silent_swallow_of_a_typed_exception(self, tmp_path):
        source = """
        try:
            probe()
        except NetworkError:
            pass
        """
        findings = lint_source(tmp_path, source, rules=["REP008"])
        assert len(findings) == 1
        assert "swallowed" in findings[0].message

    def test_typed_and_handled_is_clean(self, tmp_path):
        source = """
        try:
            probe()
        except NetworkError as err:
            taxonomy.record(err)
        """
        assert lint_source(tmp_path, source, rules=["REP008"]) == []

    def test_fault_plane_is_exempt(self, tmp_path):
        target = tmp_path / "repro" / "faults" / "transport.py"
        target.parent.mkdir(parents=True)
        target.write_text("try:\n    probe()\nexcept Exception:\n    pass\n")
        findings = run_lint([str(target)], rule_ids=["REP008"]).findings
        assert findings == []


class TestRep009AdHocInstrumentation:
    def test_flags_print(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(count):\n    print('scanned', count)\n",
            rules=["REP009"],
        )
        assert [f.rule for f in findings] == ["REP009"]
        assert "Observer" in findings[0].message

    def test_flags_time_perf_counter(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import time\nstart = time.perf_counter()\n",
            rules=["REP009"],
        )
        assert [f.rule for f in findings] == ["REP009"]
        assert "span" in findings[0].message

    def test_flags_aliased_perf_counter(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from time import perf_counter as tick\nstart = tick()\n",
            rules=["REP009"],
        )
        assert [f.rule for f in findings] == ["REP009"]

    def test_observer_calls_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(obs):\n"
            "    obs.count('probes_total')\n"
            "    with obs.span('scan.day'):\n"
            "        obs.add_time(86400)\n",
            rules=["REP009"],
        )
        assert findings == []

    def test_unrelated_name_print_attribute_is_clean(self, tmp_path):
        # Only the builtin ``print`` name counts, not arbitrary attributes.
        findings = lint_source(
            tmp_path, "report.print_summary()\n", rules=["REP009"]
        )
        assert findings == []

    @pytest.mark.parametrize(
        "relative",
        [
            ("repro", "obs", "export.py"),
            ("repro", "cli.py"),
            ("benchmarks", "bench_scan.py"),
            ("tests", "test_scan.py"),
            ("examples", "quickstart.py"),
        ],
    )
    def test_exempt_surfaces_may_print(self, tmp_path, relative):
        target = tmp_path.joinpath(*relative)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "import time\nprint('x')\nstart = time.perf_counter()\n"
        )
        assert run_lint([str(target)], rule_ids=["REP009"]).findings == []


class TestRep010ArtifactWrite:
    def test_flags_open_write_mode(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "with open('out.json', 'w') as fh:\n    fh.write('{}')\n",
            rules=["REP010"],
        )
        assert [f.rule for f in findings] == ["REP010"]
        assert "repro.io" in findings[0].message

    def test_flags_open_mode_keyword(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "fh = open('out.bin', mode='ab')\n",
            rules=["REP010"],
        )
        assert [f.rule for f in findings] == ["REP010"]

    def test_open_for_reading_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "with open('in.json') as fh:\n    data = fh.read()\n"
            "with open('in.txt', 'r') as fh:\n    text = fh.read()\n",
            rules=["REP010"],
        )
        assert findings == []

    def test_flags_json_dump(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import json\ndef f(data, fh):\n    json.dump(data, fh)\n",
            rules=["REP010"],
        )
        assert [f.rule for f in findings] == ["REP010"]

    def test_json_dumps_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import json\ntext = json.dumps({'a': 1})\n",
            rules=["REP010"],
        )
        assert findings == []

    @pytest.mark.parametrize("method", ["write_text", "write_bytes"])
    def test_flags_pathlib_writes(self, tmp_path, method):
        findings = lint_source(
            tmp_path,
            f"def f(path):\n    path.{method}('x')\n",
            rules=["REP010"],
        )
        assert [f.rule for f in findings] == ["REP010"]

    def test_flags_path_open_write_mode(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(path):\n    return path.open('a')\n",
            rules=["REP010"],
        )
        assert [f.rule for f in findings] == ["REP010"]

    def test_path_open_read_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(path):\n    return path.open()\n",
            rules=["REP010"],
        )
        assert findings == []

    @pytest.mark.parametrize(
        "relative",
        [
            ("repro", "io.py"),
            ("repro", "store", "cas.py"),
            ("repro", "obs", "export.py"),
            ("repro", "devtools", "baseline.py"),
            ("repro", "cli.py"),
            ("benchmarks", "conftest.py"),
            ("tests", "test_scan.py"),
            ("examples", "quickstart.py"),
        ],
    )
    def test_exempt_surfaces_may_write(self, tmp_path, relative):
        target = tmp_path.joinpath(*relative)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "import json\n"
            "with open('out.json', 'w') as fh:\n"
            "    json.dump({}, fh)\n"
        )
        assert run_lint([str(target)], rule_ids=["REP010"]).findings == []


class TestRep014SupervisionContainment:
    @pytest.mark.parametrize(
        "exc",
        ["BaseException", "KeyboardInterrupt", "SystemExit", "SimulatedCrashError"],
    )
    def test_flags_teardown_catches(self, tmp_path, exc):
        source = f"""
        try:
            probe()
        except {exc}:
            recover()
        """
        findings = lint_source(tmp_path, source, rules=["REP014"])
        assert [f.rule for f in findings] == ["REP014"]
        assert "repro.supervise" in findings[0].message

    def test_flags_teardown_name_inside_a_tuple(self, tmp_path):
        source = """
        try:
            probe()
        except (ValueError, KeyboardInterrupt):
            recover()
        """
        assert len(lint_source(tmp_path, source, rules=["REP014"])) == 1

    def test_flags_attribute_spelling(self, tmp_path):
        source = """
        import repro.errors
        try:
            probe()
        except repro.errors.SimulatedCrashError:
            recover()
        """
        assert len(lint_source(tmp_path, source, rules=["REP014"])) == 1

    def test_flags_bare_except(self, tmp_path):
        source = """
        try:
            probe()
        except:
            recover()
        """
        findings = lint_source(tmp_path, source, rules=["REP014"])
        assert len(findings) == 1
        assert "teardown" in findings[0].message

    def test_flags_signal_handler_installs(self, tmp_path):
        source = """
        import signal
        signal.signal(signal.SIGTERM, handler)
        """
        findings = lint_source(tmp_path, source, rules=["REP014"])
        assert len(findings) == 1
        assert "signal" in findings[0].message

    def test_flags_aliased_signal_install(self, tmp_path):
        source = """
        from signal import signal as install
        install(15, handler)
        """
        assert len(lint_source(tmp_path, source, rules=["REP014"])) == 1

    def test_reading_signal_constants_is_clean(self, tmp_path):
        source = """
        import signal
        name = signal.Signals(15).name
        pending = signal.getsignal(signal.SIGTERM)
        """
        assert lint_source(tmp_path, source, rules=["REP014"]) == []

    def test_typed_repro_error_catch_is_clean(self, tmp_path):
        source = """
        try:
            probe()
        except NetworkError:
            recover()
        """
        assert lint_source(tmp_path, source, rules=["REP014"]) == []

    def test_even_exception_catch_all_is_not_rep014(self, tmp_path):
        # ``except Exception`` is REP008's finding; REP014 is only about
        # teardown interception, which Exception does not catch.
        source = """
        try:
            probe()
        except Exception:
            recover()
        """
        assert lint_source(tmp_path, source, rules=["REP014"]) == []

    def test_supervision_plane_is_exempt(self, tmp_path):
        target = tmp_path / "repro" / "supervise" / "supervisor.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "try:\n    probe()\nexcept SimulatedCrashError:\n    restart()\n"
        )
        assert run_lint([str(target)], rule_ids=["REP014"]).findings == []

    def test_fault_plane_is_not_exempt(self, tmp_path):
        # REP008 exempts faults/parallel (they catch broadly by design);
        # REP014 does not — teardown containment has no second home.
        target = tmp_path / "repro" / "faults" / "retry.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "try:\n    probe()\nexcept BaseException:\n    pass\n"
        )
        findings = run_lint([str(target)], rule_ids=["REP014"]).findings
        assert [f.rule for f in findings] == ["REP014"]


class TestSuppression:
    def test_inline_disable_specific_rule(self, tmp_path):
        report_src = (
            "import random\n"
            "rng = random.Random(0)  # repro-lint: disable=REP001\n"
        )
        target = tmp_path / "s.py"
        target.write_text(report_src)
        report = run_lint([str(target)], rule_ids=["REP001"])
        assert report.findings == []
        assert report.suppressed == 1

    def test_inline_disable_all_rules(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text(
            "import time\nstamp = time.time()  # repro-lint: disable\n"
        )
        assert run_lint([str(target)]).findings == []

    def test_inline_disable_wrong_rule_still_reports(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text(
            "import random\n"
            "rng = random.Random(0)  # repro-lint: disable=REP003\n"
        )
        assert len(run_lint([str(target)], rule_ids=["REP001"]).findings) == 1

    def test_file_wide_disable(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text(
            "# repro-lint: disable-file=REP005\n"
            "a = list(set([1]))\n"
            "b = list(set([2]))\n"
        )
        report = run_lint([str(target)], rule_ids=["REP005"])
        assert report.findings == []
        assert report.suppressed == 2


class TestBaseline:
    def test_round_trip_filters_recorded_findings(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text("import random\nrng = random.Random(0)\n")
        baseline = tmp_path / "baseline.json"

        first = run_lint([str(target)], rule_ids=["REP001"])
        assert len(first.findings) == 1
        assert write_baseline(str(baseline), first.findings) == 1

        second = run_lint(
            [str(target)], rule_ids=["REP001"], baseline_path=str(baseline)
        )
        assert second.findings == []
        assert second.baselined == 1

    def test_new_findings_escape_the_baseline(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text("import random\nrng = random.Random(0)\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(
            str(baseline), run_lint([str(target)], rule_ids=["REP001"]).findings
        )
        target.write_text(
            "import random\n"
            "rng = random.Random(0)\n"
            "other = random.Random(99)\n"
        )
        report = run_lint(
            [str(target)], rule_ids=["REP001"], baseline_path=str(baseline)
        )
        assert len(report.findings) == 1
        assert "Random(99)" in report.findings[0].snippet

    def test_fingerprint_survives_line_shift(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text("import random\nrng = random.Random(0)\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(
            str(baseline), run_lint([str(target)], rule_ids=["REP001"]).findings
        )
        target.write_text(
            "import random\n\n\n# shifted\nrng = random.Random(0)\n"
        )
        report = run_lint(
            [str(target)], rule_ids=["REP001"], baseline_path=str(baseline)
        )
        assert report.findings == []

    def test_malformed_baseline_raises_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(ConfigError):
            load_baseline(str(bad))


class TestEngine:
    def test_unknown_rule_rejected(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text("x = 1\n")
        with pytest.raises(ConfigError):
            run_lint([str(target)], rule_ids=["REP999"])

    def test_missing_path_rejected(self):
        with pytest.raises(ConfigError):
            iter_python_files(["/no/such/path/anywhere"])

    def test_syntax_error_rejected(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text("def broken(:\n")
        with pytest.raises(ConfigError):
            parse_file(str(target))

    def test_module_name_walks_package_chain(self, tmp_path):
        write_package(tmp_path / "pkg", {"sub/mod.py": "X = 1\n"})
        assert module_name_for(str(tmp_path / "pkg" / "sub" / "mod.py")) == (
            "pkg.sub.mod"
        )
        assert module_name_for(str(tmp_path / "pkg" / "__init__.py")) == "pkg"

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [os.path.basename(f) for f in files] == ["real.py"]


class TestSelfLint:
    def test_src_repro_is_clean(self):
        report = run_lint([REPRO_SRC])
        assert report.findings == [], "\n".join(
            finding.format() for finding in report.findings
        )
        assert report.files_scanned > 100


class TestLintCli:
    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert cli_main(["lint", REPRO_SRC]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_cli_exit_one_with_json_records(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nrng = random.Random(0)\n")
        assert cli_main(["lint", str(target), "--format", "json"]) == 1
        records = json.loads(capsys.readouterr().out)
        # REP001 flags the raw construction; REP011 flags the same RNG
        # escaping into a module global.
        assert [record["rule"] for record in records] == ["REP001", "REP011"]
        record = records[0]
        assert record["file"].endswith("bad.py")
        assert record["line"] == 2
        assert "derive_rng" in record["message"]

    def test_cli_write_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nrng = random.Random(0)\n")
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(["lint", str(target), "--write-baseline", str(baseline)]) == 0
        )
        capsys.readouterr()
        assert cli_main(["lint", str(target), "--baseline", str(baseline)]) == 0

    def test_cli_rules_subset(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nrng = random.Random(0)\n")
        assert cli_main(["lint", str(target), "--rules", "REP003"]) == 0

    def test_cli_bad_path_exits_two(self, capsys):
        assert cli_main(["lint", "/no/such/dir"]) == 2


class TestSplitRng:
    def test_split_is_deterministic(self):
        a = split_rng(derive_rng(7, "parent"), "child")
        b = split_rng(derive_rng(7, "parent"), "child")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_paths_decorrelate_siblings(self):
        parent = derive_rng(7, "parent")
        state = parent.getstate()
        left = split_rng(parent, "left")
        parent.setstate(state)
        right = split_rng(parent, "right")
        assert [left.random() for _ in range(5)] != [
            right.random() for _ in range(5)
        ]

    def test_parent_advances_one_draw_regardless_of_path(self):
        one, two = derive_rng(3, "p"), derive_rng(3, "p")
        split_rng(one, "a")
        split_rng(two, "completely", "different", "path")
        assert one.random() == two.random()
