"""Tests for repro.tracking.patterns and the §VI seller experiment."""

import pytest

from repro.errors import AttackError
from repro.sim.clock import DAY, HOUR
from repro.tracking.deanon import CapturedClient
from repro.tracking.patterns import (
    SellerCriteria,
    SellerIdentification,
    VisitPattern,
    classify_visitors,
    patterns_from_captures,
)


def capture(ip, t):
    return CapturedClient(
        time=t, client_ip=ip, descriptor_id=b"\x01" * 20, guard_fingerprint=b"g" * 20
    )


class TestVisitPattern:
    def test_counts(self):
        pattern = VisitPattern(client_ip=1, visit_times=[0, HOUR, DAY, DAY + HOUR])
        assert pattern.visits == 4
        assert pattern.active_days() == 2
        assert pattern.visits_per_active_day() == 2.0

    def test_regularity_of_clockwork(self):
        pattern = VisitPattern(client_ip=1, visit_times=[i * 6 * HOUR for i in range(10)])
        assert pattern.regularity() > 0.95

    def test_regularity_of_sporadic(self):
        pattern = VisitPattern(
            client_ip=1, visit_times=[0, HOUR, 9 * DAY, 9 * DAY + 10]
        )
        assert pattern.regularity() < 0.3

    def test_regularity_needs_three_visits(self):
        assert VisitPattern(client_ip=1, visit_times=[0, DAY]).regularity() == 0.0

    def test_empty_pattern(self):
        pattern = VisitPattern(client_ip=1, visit_times=[])
        assert pattern.visits_per_active_day() == 0.0


class TestClassification:
    def test_seller_and_buyer_split(self):
        captures = []
        # Seller: 2 visits/day for 5 days.
        for day in range(5):
            captures.append(capture(0xAA, day * DAY + 9 * HOUR))
            captures.append(capture(0xAA, day * DAY + 18 * HOUR))
        # Buyer: one visit.
        captures.append(capture(0xBB, 2 * DAY))
        patterns = patterns_from_captures(captures)
        sellers, buyers = classify_visitors(patterns)
        assert sellers == [0xAA]
        assert buyers == [0xBB]

    def test_criteria_validation(self):
        with pytest.raises(AttackError):
            SellerCriteria(min_active_days=0)
        with pytest.raises(AttackError):
            SellerCriteria(min_regularity=2.0)

    def test_regularity_gate_optional(self):
        captures = [capture(0xCC, t) for t in (0, DAY, DAY + 1, 2 * DAY, 4 * DAY)]
        patterns = patterns_from_captures(captures)
        strict = SellerCriteria(min_regularity=0.9)
        sellers, _ = classify_visitors(patterns, strict)
        assert sellers == []
        lax = SellerCriteria(min_regularity=0.0)
        sellers, _ = classify_visitors(patterns, lax)
        assert sellers == [0xCC]


class TestSellerIdentificationScoring:
    def test_precision_and_recall(self):
        ident = SellerIdentification(
            identified_sellers=[1, 2, 9],
            identified_buyers=[3, 4],
            true_sellers=frozenset({1, 2, 3}),
            observation_days=7,
        )
        assert ident.true_positives == 2
        assert ident.precision == pytest.approx(2 / 3)
        # captured sellers = {1, 2, 3}; flagged correctly = {1, 2}
        assert ident.captured_seller_recall == pytest.approx(2 / 3)

    def test_empty(self):
        ident = SellerIdentification(
            identified_sellers=[],
            identified_buyers=[],
            true_sellers=frozenset({1}),
            observation_days=7,
        )
        assert ident.precision == 0.0
        assert ident.captured_seller_recall == 0.0


class TestSec6Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import run_sec6

        return run_sec6(
            seed=2,
            honest_relays=250,
            buyer_count=300,
            seller_count=25,
            observation_days=7,
        )

    def test_sellers_identified_with_perfect_precision(self, result):
        ident = result.identification
        assert ident.true_positives >= 3
        assert ident.precision == 1.0

    def test_most_capturable_sellers_flagged(self, result):
        assert result.identification.captured_seller_recall >= 0.5

    def test_buyers_not_flagged(self, result):
        flagged_buyers = [
            ip
            for ip in result.identification.identified_sellers
            if ip not in result.identification.true_sellers
        ]
        assert flagged_buyers == []
