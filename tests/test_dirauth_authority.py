"""Tests for repro.dirauth.authority — the monitored-relay flaw."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.dirauth.authority import DirectoryAuthoritySet
from repro.errors import ConsensusError
from repro.relay.flags import RelayFlags
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR


def make_relay(ip, bandwidth=500, started_at=0, nickname="r", seed=None):
    return Relay(
        nickname=nickname,
        ip=ip,
        or_port=9001,
        keypair=KeyPair.generate(random.Random(seed) if seed is not None else random),
        bandwidth=bandwidth,
        started_at=started_at,
    )


class TestRegistration:
    def test_register_and_count(self):
        authority = DirectoryAuthoritySet()
        authority.register(make_relay(1))
        assert authority.monitored_count == 1

    def test_double_register_rejected(self):
        authority = DirectoryAuthoritySet()
        relay = make_relay(1)
        authority.register(relay)
        with pytest.raises(ConsensusError):
            authority.register(relay)

    def test_deregister(self):
        authority = DirectoryAuthoritySet()
        relay = make_relay(1)
        authority.register(relay)
        authority.deregister(relay)
        assert authority.monitored_count == 0

    def test_relay_by_fingerprint(self):
        authority = DirectoryAuthoritySet()
        relay = make_relay(1)
        authority.register(relay)
        assert authority.relay_by_fingerprint(relay.fingerprint) is relay
        assert authority.relay_by_fingerprint(b"\x00" * 20) is None


class TestConsensusBuilding:
    def test_only_reachable_listed(self):
        authority = DirectoryAuthoritySet()
        up = make_relay(1)
        down = make_relay(2, seed=1)
        down.set_reachable(False, 0)
        authority.register_all([up, down])
        consensus = authority.build_consensus(DAY)
        assert up.fingerprint in consensus
        assert down.fingerprint not in consensus

    def test_per_ip_rule_enforced(self):
        authority = DirectoryAuthoritySet()
        for i in range(5):
            authority.register(make_relay(7, bandwidth=100 + i, seed=i))
        consensus = authority.build_consensus(DAY)
        assert len(consensus) == 2

    def test_entries_sorted_by_fingerprint(self):
        authority = DirectoryAuthoritySet()
        for i in range(10):
            authority.register(make_relay(i, seed=i))
        consensus = authority.build_consensus(DAY)
        fps = [entry.fingerprint for entry in consensus]
        assert fps == sorted(fps)

    def test_shadow_relays_accrue_uptime_while_unlisted(self):
        """THE flaw (Section II): relays squeezed out by the per-IP rule are
        still monitored; when the active pair dies, the shadow enters the
        consensus with HSDir immediately."""
        authority = DirectoryAuthoritySet()
        actives = [make_relay(9, bandwidth=1000 + i, seed=i) for i in range(2)]
        shadow = make_relay(9, bandwidth=100, seed=99)
        authority.register_all(actives + [shadow])

        early = authority.build_consensus(26 * HOUR)
        assert shadow.fingerprint not in early

        for relay in actives:
            relay.set_reachable(False, 26 * HOUR)
        late = authority.build_consensus(27 * HOUR)
        entry = late.entry_for(shadow.fingerprint)
        assert entry is not None
        assert entry.has(RelayFlags.HSDIR)  # full 27 h of uptime counted

    def test_consensus_counter(self):
        authority = DirectoryAuthoritySet()
        authority.build_consensus(0)
        authority.build_consensus(HOUR)
        assert authority.consensuses_built == 2
