"""Tests for repro.population.webserver."""

import random

from repro.population.botnets import (
    make_goldnet_front_host,
    make_goldnet_servers,
    make_skynet_bot_host,
)
from repro.population.webserver import (
    GoldnetApp,
    HttpResponse,
    PhysicalServer,
    StaticSite,
    TlsCertificate,
)
from repro.sim.clock import DAY


class TestHttpResponse:
    def test_ok_range(self):
        assert HttpResponse(status=200).ok
        assert not HttpResponse(status=503).ok
        assert not HttpResponse(status=404).ok


class TestTlsCertificate:
    def test_matching_host(self):
        cert = TlsCertificate(common_name="abc.onion", self_signed=True)
        assert cert.matches_host("abc.onion")
        assert not cert.matches_host("xyz.onion")

    def test_public_dns_detection(self):
        assert TlsCertificate(common_name="shop.example.com", self_signed=False).names_public_dns
        assert not TlsCertificate(common_name="abc.onion", self_signed=True).names_public_dns
        assert not TlsCertificate(common_name="localhost", self_signed=True).names_public_dns


class TestStaticSite:
    def test_serves_same_page_everywhere(self):
        site = StaticSite(html="<html>hi</html>")
        assert site.handle_request("/", 0).body == "<html>hi</html>"
        assert site.handle_request("/any/path", 0).status == 200


class TestGoldnet:
    def test_503_on_root(self):
        server = PhysicalServer(server_id=0, booted_at=0)
        app = GoldnetApp(server=server)
        assert app.handle_request("/", DAY).status == 503

    def test_server_status_exposed(self):
        server = PhysicalServer(server_id=0, booted_at=0)
        app = GoldnetApp(server=server)
        response = app.handle_request("/server-status", DAY)
        assert response.status == 200
        assert f"Server uptime: {DAY} seconds" in response.body
        assert "requests/sec" in response.body
        assert "POST" in response.body

    def test_fronts_of_same_server_share_uptime(self):
        """The forensic tell that grouped the nine fronts onto two machines."""
        rng = random.Random(0)
        servers = make_goldnet_servers((2, 1), now=100 * DAY, rng=rng)
        host_a = make_goldnet_front_host(servers[0], 0)
        host_b = make_goldnet_front_host(servers[0], 0)
        host_c = make_goldnet_front_host(servers[1], 0)
        when = 120 * DAY

        def uptime_of(host):
            body = host.endpoint_on(80).application.handle_request(
                "/server-status", when
            ).body
            import re

            return int(re.search(r"uptime: (\d+)", body).group(1))

        assert uptime_of(host_a) == uptime_of(host_b)
        assert uptime_of(host_a) != uptime_of(host_c)

    def test_traffic_near_330kb(self):
        rng = random.Random(1)
        for server in make_goldnet_servers((2, 1), now=50 * DAY, rng=rng):
            assert 300_000 <= server.traffic_bytes_per_sec <= 360_000


class TestSkynetHost:
    def test_only_port_55080(self):
        host = make_skynet_bot_host(1, 0, None)
        assert host.open_ports == [55080]

    def test_abnormal_error_configured(self):
        host = make_skynet_bot_host(1, 0, None)
        assert host.endpoint_on(55080).abnormal_error
