"""Tests for repro.classify.evaluation."""

import pytest

from repro.classify.evaluation import (
    EvaluationResult,
    evaluate,
    held_out_language_samples,
    held_out_topic_samples,
)
from repro.errors import ClassificationError


class TestEvaluationResult:
    def make(self):
        result = EvaluationResult()
        result.record("a", "a")
        result.record("a", "a")
        result.record("a", "b")
        result.record("b", "b")
        return result

    def test_accuracy(self):
        assert self.make().accuracy == pytest.approx(0.75)

    def test_recall(self):
        result = self.make()
        assert result.recall("a") == pytest.approx(2 / 3)
        assert result.recall("b") == 1.0

    def test_precision(self):
        result = self.make()
        assert result.precision("a") == 1.0
        assert result.precision("b") == pytest.approx(0.5)

    def test_unseen_label_scores_zero(self):
        result = self.make()
        assert result.recall("zzz") == 0.0
        assert result.precision("zzz") == 0.0

    def test_worst_confusions(self):
        assert self.make().worst_confusions() == [("a", "b", 1)]

    def test_labels_sorted_union(self):
        assert self.make().labels() == ["a", "b"]

    def test_format_summary(self):
        summary = self.make().format_summary()
        assert "75.0%" in summary
        assert "a -> b" in summary

    def test_empty_accuracy(self):
        assert EvaluationResult().accuracy == 0.0


class TestEvaluate:
    def test_scores_callable(self):
        result = evaluate(lambda text: text.strip(), [(" x", "x"), (" y", "z")])
        assert result.total == 2
        assert result.correct == 1

    def test_empty_samples_rejected(self):
        with pytest.raises(ClassificationError):
            evaluate(lambda text: text, [])


class TestShippedModels:
    def test_language_detector_scores_high(self, language_detector):
        samples = held_out_language_samples(per_language=4)
        result = evaluate(language_detector.detect, samples)
        assert result.accuracy >= 0.95
        # Every language individually recalled.
        for language in {label for _, label in samples}:
            assert result.recall(language) >= 0.75

    def test_topic_classifier_scores_high(self, topic_classifier):
        samples = held_out_topic_samples(per_topic=4)
        result = evaluate(topic_classifier.classify, samples)
        assert result.accuracy >= 0.9

    def test_held_out_sets_cover_all_classes(self):
        from repro.population.corpus import LANGUAGES, TOPICS

        languages = {label for _, label in held_out_language_samples(per_language=1)}
        topics = {label for _, label in held_out_topic_samples(per_topic=1)}
        assert languages == set(LANGUAGES)
        assert topics == set(TOPICS)


class TestDescriptorUploadValidation:
    """Validation added alongside: directories can reject forged uploads."""

    def test_honest_upload_accepted(self, network):
        import random

        from repro.crypto.keys import KeyPair
        from repro.hs.service import HiddenService
        from repro.hsdir.directory import HSDirServer

        service = HiddenService(
            keypair=KeyPair.generate(random.Random(9)), online_from=0
        )
        descriptor = service.current_descriptors(network.clock.now)[0]
        server = HSDirServer(relay_id=1)
        server.store(descriptor.to_stored(), network.clock.now, validate=True)
        assert server.publishes_received == 1

    def test_forged_id_rejected(self, network):
        import random

        from repro.crypto.keys import KeyPair
        from repro.errors import DescriptorError
        from repro.hs.service import HiddenService
        from repro.hsdir.directory import HSDirServer, StoredDescriptor

        service = HiddenService(
            keypair=KeyPair.generate(random.Random(9)), online_from=0
        )
        descriptor = service.current_descriptors(network.clock.now)[0]
        forged = StoredDescriptor(
            descriptor_id=b"\x42" * 20,  # not derived from the key
            public_der=descriptor.public_der,
            replica=descriptor.replica,
            published_at=descriptor.published_at,
        )
        server = HSDirServer(relay_id=1)
        with pytest.raises(DescriptorError):
            server.store(forged, network.clock.now, validate=True)

    def test_stale_period_grace(self, network):
        """An upload racing the rotation boundary (previous period's ID)
        is still accepted within the one-period grace."""
        import random

        from repro.crypto.keys import KeyPair
        from repro.hs.service import HiddenService
        from repro.hsdir.directory import HSDirServer
        from repro.sim.clock import DAY

        service = HiddenService(
            keypair=KeyPair.generate(random.Random(9)), online_from=0
        )
        now = network.clock.now
        stale = service.current_descriptors(now)[0]
        server = HSDirServer(relay_id=1)
        server.store(stale.to_stored(), now + DAY, validate=True)
        assert server.publishes_received == 1
