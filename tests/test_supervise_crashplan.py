"""Tests for repro.supervise.crashplan — deterministic crash injection.

The properties the supervisor leans on:

- a plan fires as a pure function of (point label, visit number) — no
  wall-clock, no scheduling;
- visit counts are owned by the CrashPoints hook and are monotonic across
  restarts, so every scheduled crash is a one-shot;
- the injected death is a BaseException that sails past ``except
  Exception`` — only the supervisor may catch it.
"""

import pytest

from repro.errors import SimulatedCrashError, SupervisionError
from repro.supervise import (
    CRASHES_ENV,
    LEDGER_APPEND,
    PIPELINE_STAGES,
    PMAP_SHARD,
    STORE_COMMIT,
    CrashPlan,
    CrashPoints,
    CrashRule,
    build_crash_plan,
    crash_profile_names,
    parse_crash_schedule,
    resolve_crash_spec,
    stage_enter,
    stage_exit,
)


class TestLabels:
    def test_stage_labels(self):
        assert stage_enter("scan") == "stage:scan:enter"
        assert stage_exit("classify") == "stage:classify:exit"

    def test_canonical_labels_match_lower_layers(self):
        # The lower layers spell these labels locally (no supervise
        # import); the constants here must agree with them.
        from repro.parallel import PMAP_SHARD_POINT
        from repro.store import LEDGER_APPEND_POINT, STORE_COMMIT_POINT

        assert PMAP_SHARD == PMAP_SHARD_POINT
        assert STORE_COMMIT == STORE_COMMIT_POINT
        assert LEDGER_APPEND == LEDGER_APPEND_POINT

    def test_pipeline_stages_in_campaign_order(self):
        assert PIPELINE_STAGES == ("scan", "certificates", "crawl", "classify")


class TestCrashRule:
    def test_default_visit_is_one(self):
        assert CrashRule("stage:scan:enter").visit == 1

    def test_empty_label_rejected(self):
        with pytest.raises(SupervisionError):
            CrashRule("")

    @pytest.mark.parametrize("visit", [0, -3])
    def test_non_positive_visit_rejected(self, visit):
        with pytest.raises(SupervisionError):
            CrashRule("x", visit)


class TestCrashPlan:
    def test_inert_plan_has_no_rules(self):
        assert CrashPlan().inert
        assert not CrashPlan(rules=(CrashRule("x"),)).inert

    def test_duplicate_rules_rejected(self):
        with pytest.raises(SupervisionError):
            CrashPlan(rules=(CrashRule("x", 2), CrashRule("x", 2)))

    def test_same_point_distinct_visits_allowed(self):
        plan = CrashPlan(rules=(CrashRule("x", 1), CrashRule("x", 3)))
        assert plan.should_crash("x", 1)
        assert not plan.should_crash("x", 2)
        assert plan.should_crash("x", 3)
        assert not plan.should_crash("y", 1)

    def test_describe_is_json_friendly(self):
        plan = CrashPlan(seed=7, rules=(CrashRule("a", 2),), name="custom")
        assert plan.describe() == {
            "name": "custom",
            "seed": 7,
            "rules": ["a@2"],
        }


class TestCrashPoints:
    def test_inert_plan_never_fires(self):
        points = CrashPoints(CrashPlan())
        for _ in range(10):
            points("stage:scan:enter")
        assert points.crash_count == 0
        # Inert plans skip bookkeeping entirely (the hot-path case).
        assert points.visits == {}

    def test_fires_at_scheduled_visit_exactly_once(self):
        plan = CrashPlan(rules=(CrashRule("p", 2),))
        points = CrashPoints(plan)
        points("p")  # visit 1: survives
        with pytest.raises(SimulatedCrashError) as info:
            points("p")  # visit 2: dies
        assert info.value.point == "p"
        assert info.value.visit == 2
        # Visits are monotonic: the restart's hits are visits 3, 4, ... so
        # the scheduled crash never fires again.
        for _ in range(5):
            points("p")
        assert points.crash_count == 1
        assert points.visits["p"] == 7

    def test_fired_log_and_distinct_points(self):
        plan = CrashPlan(rules=(CrashRule("b", 1), CrashRule("a", 2)))
        points = CrashPoints(plan)
        with pytest.raises(SimulatedCrashError):
            points("b")
        points("a")
        with pytest.raises(SimulatedCrashError):
            points("a")
        assert [(e.point, e.visit) for e in points.fired] == [("b", 1), ("a", 2)]
        assert points.distinct_points() == ("a", "b")

    def test_injected_death_is_not_an_ordinary_exception(self):
        # The whole point: ``except Exception`` must NOT contain it.
        points = CrashPoints(CrashPlan(rules=(CrashRule("p", 1),)))
        with pytest.raises(SimulatedCrashError):
            try:
                points("p")
            except Exception:  # noqa: REP008 — proving the miss
                pytest.fail("SimulatedCrashError was caught by except Exception")


class TestProfiles:
    def test_profile_names(self):
        assert crash_profile_names() == ("none", "light", "moderate", "heavy")

    def test_none_profile_is_inert(self):
        assert build_crash_plan("none").inert

    @pytest.mark.parametrize("name", ["light", "moderate", "heavy"])
    def test_injecting_profiles_have_rules(self, name):
        plan = build_crash_plan(name, seed=3)
        assert plan.name == name
        assert plan.seed == 3
        assert not plan.inert

    def test_moderate_meets_the_acceptance_bar(self):
        # >= 5 rules at >= 5 distinct labels spanning stage, shard, and
        # commit crash points — the ``repro crashtest`` acceptance shape.
        plan = build_crash_plan("moderate")
        labels = {rule.point for rule in plan.rules}
        assert len(plan.rules) >= 5
        assert len(labels) >= 5
        assert any(label.startswith("stage:") for label in labels)
        assert PMAP_SHARD in labels
        assert STORE_COMMIT in labels

    def test_heavy_covers_the_ledger_append(self):
        labels = {rule.point for rule in build_crash_plan("heavy").rules}
        assert LEDGER_APPEND in labels

    def test_profile_name_is_case_insensitive(self):
        assert build_crash_plan("MODERATE").name == "moderate"


class TestScheduleParsing:
    def test_explicit_schedule(self):
        rules = parse_crash_schedule("stage:scan:exit@2, pmap:shard@3")
        assert rules == (
            CrashRule("stage:scan:exit", 2),
            CrashRule("pmap:shard", 3),
        )

    def test_visit_defaults_to_one(self):
        assert parse_crash_schedule("store:commit") == (
            CrashRule("store:commit", 1),
        )

    def test_blank_entries_skipped(self):
        assert parse_crash_schedule("a@1,, ,b@2") == (
            CrashRule("a", 1),
            CrashRule("b", 2),
        )

    def test_bad_visit_rejected(self):
        with pytest.raises(SupervisionError):
            parse_crash_schedule("a@soon")

    def test_missing_label_rejected(self):
        with pytest.raises(SupervisionError):
            parse_crash_schedule("@2")


class TestSpecResolution:
    def test_explicit_spec_wins(self, monkeypatch):
        monkeypatch.setenv(CRASHES_ENV, "heavy")
        assert resolve_crash_spec("light") == "light"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CRASHES_ENV, "moderate")
        assert resolve_crash_spec(None) == "moderate"

    def test_default_is_none_profile(self, monkeypatch):
        monkeypatch.delenv(CRASHES_ENV, raising=False)
        assert resolve_crash_spec(None) == "none"
        assert build_crash_plan(None).inert

    def test_build_accepts_schedule_spec(self):
        plan = build_crash_plan("stage:crawl:enter@1", seed=5)
        assert plan.name == "custom"
        assert plan.rules == (CrashRule("stage:crawl:enter", 1),)

    def test_unknown_profile_rejected(self):
        with pytest.raises(SupervisionError):
            build_crash_plan("catastrophic")
