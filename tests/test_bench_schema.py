"""The BENCH_*.json schema, runner policy, and trajectory file round-trip."""

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchRecord,
    Trajectory,
    WallStats,
    append_point,
    canonical_json,
    load_trajectory,
    record_from_dict,
    record_to_dict,
    render_trajectory_text,
    run_workload,
    strip_timing,
    trajectory_from_dict,
    trajectory_path,
    trajectory_to_dict,
    write_trajectory,
)
from repro.errors import BenchError, BenchSchemaError
from repro.obs import Observer


def make_record(**overrides) -> BenchRecord:
    fields = dict(
        name="toy",
        hot_path="repro.bench.workloads._toy_run",
        tier="smoke",
        kernel="batch",
        label="test",
        workers=1,
        warmup=1,
        repeats=2,
        items=64,
        checksum="ab" * 32,
        sim_seconds=0,
        wall=WallStats(
            mean_seconds=0.02,
            min_seconds=0.01,
            max_seconds=0.03,
            per_repeat_seconds=(0.01, 0.03),
        ),
    )
    fields.update(overrides)
    return BenchRecord(**fields)


class TestSchemaRoundTrip:
    def test_record_round_trips(self):
        record = make_record()
        assert record_from_dict(record_to_dict(record)) == record

    def test_trajectory_round_trips(self):
        trajectory = Trajectory(
            name="toy", points=[make_record(), make_record(kernel="scalar")]
        )
        decoded = trajectory_from_dict(trajectory_to_dict(trajectory))
        assert decoded.name == "toy"
        assert decoded.points == trajectory.points

    def test_missing_field_rejected(self):
        data = record_to_dict(make_record())
        del data["checksum"]
        with pytest.raises(BenchSchemaError, match="checksum"):
            record_from_dict(data)

    def test_wrong_type_rejected(self):
        data = record_to_dict(make_record())
        data["items"] = "sixty-four"
        with pytest.raises(BenchSchemaError, match="items"):
            record_from_dict(data)

    def test_schema_version_mismatch_rejected(self):
        data = trajectory_to_dict(Trajectory(name="toy", points=[make_record()]))
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="schema version"):
            trajectory_from_dict(data)

    def test_empty_trajectory_has_no_last(self):
        with pytest.raises(BenchSchemaError, match="no points"):
            Trajectory(name="toy").last

    def test_strip_timing_removes_every_wall_block(self):
        data = trajectory_to_dict(
            Trajectory(name="toy", points=[make_record(), make_record()])
        )
        cleaned = strip_timing(data)
        assert "wall" in data["points"][0]  # original untouched
        assert all("wall" not in point for point in cleaned["points"])

    def test_canonical_json_is_sorted_and_newline_terminated(self):
        text = canonical_json({"b": 1, "a": 2})
        assert text == '{\n  "a": 2,\n  "b": 1\n}\n'


class TestRunnerPolicy:
    def test_run_produces_schema_valid_record(self):
        record = run_workload("toy", "smoke", "batch", repeats=2, warmup=0)
        assert record_from_dict(record_to_dict(record)) == record
        assert len(record.wall.per_repeat_seconds) == 2
        assert record.wall.min_seconds <= record.wall.mean_seconds
        assert record.wall.mean_seconds <= record.wall.max_seconds

    def test_checksum_is_kernel_independent(self):
        scalar = run_workload("toy", "smoke", "scalar", repeats=1, warmup=0)
        batch = run_workload("toy", "smoke", "batch", repeats=1, warmup=0)
        assert scalar.checksum == batch.checksum
        assert scalar.items == batch.items

    def test_observer_sees_runs(self):
        observer = Observer()
        run_workload("toy", "smoke", "batch", repeats=3, warmup=0, observer=observer)
        counter = observer.registry.counter(
            "bench_runs_total", workload="toy", kernel="batch"
        )
        assert counter.value == 3

    def test_unknown_workload_rejected(self):
        with pytest.raises(BenchError, match="unknown workload"):
            run_workload("nonsense", "smoke", "batch")

    def test_unknown_tier_rejected(self):
        with pytest.raises(BenchError, match="no tier"):
            run_workload("toy", "galactic", "batch")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(BenchError, match="unknown kernel"):
            run_workload("toy", "smoke", "simd")

    def test_bad_policy_rejected(self):
        with pytest.raises(BenchError, match="repeats"):
            run_workload("toy", "smoke", "batch", repeats=0)
        with pytest.raises(BenchError, match="warmup"):
            run_workload("toy", "smoke", "batch", warmup=-1)


class TestTrajectoryFiles:
    def test_path_shape_and_safety(self, tmp_path):
        assert trajectory_path("toy", tmp_path).name == "BENCH_toy.json"
        with pytest.raises(BenchError, match="filesystem-safe"):
            trajectory_path("../evil", tmp_path)

    def test_append_creates_then_extends(self, tmp_path):
        path = trajectory_path("toy", tmp_path)
        append_point(path, make_record(label="one"))
        trajectory = append_point(path, make_record(label="two"))
        assert [point.label for point in trajectory.points] == ["one", "two"]
        assert load_trajectory(path).points == trajectory.points

    def test_append_refuses_foreign_workload(self, tmp_path):
        path = trajectory_path("toy", tmp_path)
        append_point(path, make_record())
        with pytest.raises(BenchSchemaError, match="tracks workload"):
            append_point(path, make_record(name="other"))

    def test_write_is_byte_stable(self, tmp_path):
        trajectory = Trajectory(name="toy", points=[make_record()])
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_trajectory(first, trajectory)
        write_trajectory(second, trajectory)
        assert first.read_bytes() == second.read_bytes()

    def test_load_missing_and_corrupt(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="no trajectory"):
            load_trajectory(tmp_path / "BENCH_toy.json")
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            load_trajectory(bad)

    def test_text_render_is_a_view(self):
        trajectory = Trajectory(name="toy", points=[make_record(label="seed")])
        text = render_trajectory_text(trajectory)
        assert "bench trajectory: toy" in text
        assert "seed" in text
        assert render_trajectory_text(Trajectory(name="toy")).endswith("(no points)")
