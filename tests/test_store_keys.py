"""Tests for repro.store.keys — cache-key derivation.

The property pair that matters: a key is *insensitive* to irrelevant
permutations (dict insertion order, tuple-vs-list spelling) and
*sensitive* to every real change (any config field, the stage name, the
code fingerprint, upstream digests, the RNG cursor).
"""

import enum

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store.keys import CacheKey, canonicalize, code_fingerprint

_scalars = st.none() | st.booleans() | st.integers() | st.text(max_size=12)
_values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)
_configs = st.dictionaries(
    st.text(min_size=1, max_size=8), _values, min_size=1, max_size=6
)


def _reorder(value):
    """Deep copy with every dict's insertion order reversed."""
    if isinstance(value, dict):
        return {k: _reorder(v) for k, v in reversed(list(value.items()))}
    if isinstance(value, list):
        return [_reorder(item) for item in value]
    return value


class TestKeyProperties:
    @settings(max_examples=60, deadline=None)
    @given(_configs)
    def test_insertion_order_never_changes_the_key(self, config):
        original = CacheKey(stage="s", config=config, fingerprint="f")
        shuffled = CacheKey(stage="s", config=_reorder(config), fingerprint="f")
        assert original.digest() == shuffled.digest()

    @settings(max_examples=60, deadline=None)
    @given(_configs, st.integers())
    def test_changed_field_changes_the_key(self, config, salt):
        name = sorted(config)[0]
        mutated = dict(config)
        mutated[name] = ["__mutant__", salt]
        assume(canonicalize(mutated[name]) != canonicalize(config[name]))
        before = CacheKey(stage="s", config=config, fingerprint="f")
        after = CacheKey(stage="s", config=mutated, fingerprint="f")
        assert before.digest() != after.digest()

    @settings(max_examples=60, deadline=None)
    @given(_configs, st.text(min_size=1, max_size=8))
    def test_added_field_changes_the_key(self, config, name):
        assume(name not in config)
        grown = dict(config)
        grown[name] = "__added__"
        before = CacheKey(stage="s", config=config, fingerprint="f")
        after = CacheKey(stage="s", config=grown, fingerprint="f")
        assert before.digest() != after.digest()


class TestKeyFields:
    def test_every_field_is_load_bearing(self):
        base = dict(
            stage="scan", config={"seed": 7}, fingerprint="f" * 64,
            upstream=("scan=abc",), cursor="c" * 64,
        )
        reference = CacheKey(**base).digest()
        for field_name, changed in [
            ("stage", "crawl"),
            ("config", {"seed": 8}),
            ("fingerprint", "0" * 64),
            ("upstream", ("scan=def",)),
            ("cursor", "d" * 64),
        ]:
            variant = dict(base)
            variant[field_name] = changed
            assert CacheKey(**variant).digest() != reference, field_name

    def test_canonical_form_is_stable(self):
        key = CacheKey(stage="s", config={"b": 1, "a": 2}, fingerprint="f")
        assert key.canonical() == {
            "stage": "s",
            "config": {"a": 2, "b": 1},
            "fingerprint": "f",
            "upstream": [],
            "cursor": "",
        }


class TestCanonicalize:
    def test_tuple_and_list_spell_the_same_value(self):
        assert canonicalize((1, 2, 3)) == canonicalize([1, 2, 3])

    def test_sets_are_sorted(self):
        assert canonicalize({3, 1, 2}) == [1, 2, 3]
        assert canonicalize(frozenset({"b", "a"})) == ["a", "b"]

    def test_enums_collapse_to_values(self):
        class Kind(enum.Enum):
            OPEN = "open"

        assert canonicalize({"k": Kind.OPEN}) == {"k": "open"}

    def test_non_json_value_rejected(self):
        with pytest.raises(StoreError, match="not canonicalizable"):
            canonicalize({"x": object()})


class TestCodeFingerprint:
    def test_module_order_never_matters(self):
        a = code_fingerprint(("repro.sim.rng", "repro.sim.clock"))
        b = code_fingerprint(("repro.sim.clock", "repro.sim.rng"))
        assert a == b

    def test_module_set_is_load_bearing(self):
        a = code_fingerprint(("repro.sim.rng",))
        b = code_fingerprint(("repro.sim.clock",))
        assert a != b

    def test_unknown_module_rejected(self):
        with pytest.raises(StoreError, match="cannot fingerprint"):
            code_fingerprint(("repro.no_such_module",))
