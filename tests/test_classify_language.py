"""Tests for repro.classify.language — the Langdetect stand-in."""

import pytest

from repro.errors import ClassificationError
from repro.population.content import synth_language_page
from repro.population.corpus import LANGUAGES
from repro.sim.rng import derive_rng


class TestLanguageDetector:
    def test_knows_all_17_languages(self, language_detector):
        assert sorted(language_detector.languages) == sorted(LANGUAGES)

    def test_accuracy_on_held_out_pages(self, language_detector):
        rng = derive_rng(77, "eval")
        correct = total = 0
        for language in LANGUAGES:
            for _ in range(5):
                text = synth_language_page(language, rng, word_count=100)
                correct += language_detector.detect(text) == language
                total += 1
        assert correct / total >= 0.95

    def test_short_text_still_classified(self, language_detector):
        assert language_detector.detect("привет мир анонимность") == "ru"

    def test_empty_text_rejected(self, language_detector):
        with pytest.raises(ClassificationError):
            language_detector.detect("   ")

    def test_confidence_output(self, language_detector):
        rng = derive_rng(78, "eval")
        text = synth_language_page("de", rng, word_count=120)
        language, confidence = language_detector.detect_with_confidence(text)
        assert language == "de"
        assert confidence > 0.5

    def test_mixed_page_goes_to_majority_language(self, language_detector):
        rng = derive_rng(79, "eval")
        mostly_french = synth_language_page(
            "fr", rng, word_count=150, native_fraction=0.9
        )
        assert language_detector.detect(mostly_french) == "fr"

    def test_scripts_are_decisive(self, language_detector):
        assert language_detector.detect("匿名 网络 服务 安全 隐藏") == "zh"
        assert language_detector.detect("サービス 匿名 ネットワーク ようこそ") == "ja"
        assert language_detector.detect("خدمة أمن شبكة مخفي حرية") == "ar"
