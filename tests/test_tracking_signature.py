"""Tests for repro.tracking.signature."""

import random

import pytest

from repro.errors import AttackError
from repro.tracking.signature import (
    SignatureDetector,
    TrafficSignature,
    honest_response_cells,
)


class TestTrafficSignature:
    def test_encode_appends_pattern(self):
        signature = TrafficSignature(pattern=(1, 50))
        assert signature.encode(3) == [3, 1, 50]

    def test_too_short_pattern_rejected(self):
        with pytest.raises(AttackError):
            TrafficSignature(pattern=(1,))

    def test_nonpositive_cells_rejected(self):
        with pytest.raises(AttackError):
            TrafficSignature(pattern=(0, 5))

    def test_empty_payload_rejected(self):
        with pytest.raises(AttackError):
            TrafficSignature().encode(0)


class TestSignatureDetector:
    def setup_method(self):
        self.signature = TrafficSignature()
        self.detector = SignatureDetector(self.signature)

    def test_detects_own_encoding(self):
        assert self.detector.matches(self.signature.encode(3))

    def test_detects_with_jitter(self):
        bursts = self.signature.encode(3)
        bursts[-1] += 2  # cells merged in flight
        assert self.detector.matches(bursts)

    def test_rejects_beyond_jitter(self):
        bursts = self.signature.encode(3)
        bursts[-1] += 10
        assert not self.detector.matches(bursts)

    def test_rejects_short_streams(self):
        assert not self.detector.matches([3])

    def test_rejects_honest_traffic(self):
        rng = random.Random(0)
        false_positives = sum(
            self.detector.matches(honest_response_cells(rng)) for _ in range(5000)
        )
        assert false_positives == 0

    def test_negative_jitter_rejected(self):
        with pytest.raises(AttackError):
            SignatureDetector(self.signature, jitter=-1)
