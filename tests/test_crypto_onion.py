"""Tests for repro.crypto.onion."""

import hashlib
import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.onion import (
    ONION_LABEL_LEN,
    PERMANENT_ID_LEN,
    is_valid_onion,
    onion_address_from_key,
    onion_address_from_permanent_id,
    permanent_id_from_onion,
)
from repro.errors import CryptoError


class TestDerivation:
    def test_address_shape(self):
        onion = onion_address_from_key(b"some-key")
        assert onion.endswith(".onion")
        assert len(onion) == ONION_LABEL_LEN + len(".onion")

    def test_address_is_base32_of_sha1_prefix(self):
        import base64

        digest = hashlib.sha1(b"some-key").digest()
        expected = base64.b32encode(digest[:PERMANENT_ID_LEN]).decode().lower()
        assert onion_address_from_key(b"some-key") == f"{expected}.onion"

    def test_deterministic(self):
        assert onion_address_from_key(b"k") == onion_address_from_key(b"k")

    def test_different_keys_different_addresses(self):
        assert onion_address_from_key(b"k1") != onion_address_from_key(b"k2")

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            onion_address_from_key(b"")

    def test_permanent_id_wrong_length_rejected(self):
        with pytest.raises(CryptoError):
            onion_address_from_permanent_id(b"short")


class TestValidation:
    def test_known_good(self):
        assert is_valid_onion("silkroadvb5piz3r.onion")

    def test_uppercase_rejected(self):
        assert not is_valid_onion("SILKROADVB5PIZ3R.onion")

    def test_wrong_length_rejected(self):
        assert not is_valid_onion("short.onion")

    def test_invalid_base32_chars_rejected(self):
        # 0, 1, 8, 9 are not in the base32 alphabet.
        assert not is_valid_onion("silkroadvb5piz30.onion")

    def test_missing_suffix_rejected(self):
        assert not is_valid_onion("silkroadvb5piz3r")

    def test_non_string_rejected(self):
        assert not is_valid_onion(12345)  # type: ignore[arg-type]


class TestRoundTrip:
    @given(st.binary(min_size=PERMANENT_ID_LEN, max_size=PERMANENT_ID_LEN))
    def test_permanent_id_roundtrip(self, permanent_id):
        onion = onion_address_from_permanent_id(permanent_id)
        assert permanent_id_from_onion(onion) == permanent_id

    @given(st.binary(min_size=1, max_size=200))
    def test_key_to_onion_to_id_consistent(self, key):
        onion = onion_address_from_key(key)
        assert is_valid_onion(onion)
        assert permanent_id_from_onion(onion) == hashlib.sha1(key).digest()[:10]

    def test_decode_invalid_raises(self):
        with pytest.raises(CryptoError):
            permanent_id_from_onion("not-an-onion")

    def test_harvest_derivation_matches_service(self):
        """The attack's raison d'être: holding a descriptor's key material
        is enough to derive its onion address."""
        rng = random.Random(3)
        der = rng.randbytes(140)
        assert onion_address_from_key(der) == onion_address_from_key(der)
