"""Tests for repro.classify.tokenize."""

from hypothesis import given, strategies as st

from repro.classify.tokenize import char_ngrams, word_tokens


class TestWordTokens:
    def test_lowercases(self):
        assert word_tokens("Hello WORLD") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert word_tokens("drugs, weapons; market!") == ["drugs", "weapons", "market"]

    def test_keeps_inner_apostrophes_and_hyphens(self):
        assert word_tokens("don't open-source") == ["don't", "open-source"]

    def test_strips_edge_quotes(self):
        assert word_tokens("'quoted'") == ["quoted"]

    def test_empty(self):
        assert word_tokens("") == []

    def test_numbers_kept(self):
        assert word_tokens("error 404") == ["error", "404"]

    @given(st.text(max_size=200))
    def test_never_produces_empty_tokens(self, text):
        assert all(token for token in word_tokens(text))


class TestCharNgrams:
    def test_word_boundary_padding(self):
        assert char_ngrams("ab", orders=(2,)) == ["_a", "ab", "b_"]

    def test_multiple_orders(self):
        grams = char_ngrams("ab", orders=(1, 2))
        assert "a" in grams and "_a" in grams

    def test_no_pure_padding_grams(self):
        grams = char_ngrams("a b", orders=(1, 2, 3))
        assert "_" not in grams
        assert "__" not in grams

    def test_unicode_preserved(self):
        grams = char_ngrams("даркнет", orders=(1,))
        assert "д" in grams

    def test_short_word_with_long_order(self):
        # word shorter than order-2 padding still yields padded grams
        assert char_ngrams("a", orders=(3,)) == ["_a_"]

    def test_empty(self):
        assert char_ngrams("") == []

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60))
    def test_orders_respected(self, text):
        for gram in char_ngrams(text, orders=(2,)):
            assert len(gram) == 2
