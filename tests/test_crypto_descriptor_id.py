"""Tests for repro.crypto.descriptor_id — the rend-spec-v2 rotation math."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.descriptor_id import (
    REPLICAS,
    descriptor_id,
    descriptor_ids_for_day,
    descriptor_ids_for_window,
    time_period_boundaries,
    time_period_for,
)
from repro.crypto.onion import onion_address_from_key
from repro.errors import CryptoError
from repro.sim.clock import DAY, parse_date

ONION = onion_address_from_key(b"test-service")
FEB4 = parse_date("2013-02-04")

onions = st.binary(min_size=1, max_size=64).map(onion_address_from_key)
times = st.integers(min_value=0, max_value=2**33)


class TestTimePeriod:
    def test_increments_once_per_day(self):
        pid = b"\x00" + b"\x00" * 9
        assert time_period_for(DAY, pid) == time_period_for(0, pid) + 1

    def test_offset_staggers_services(self):
        # Byte 0 = 128 shifts the rotation boundary by half a day.
        early = b"\x00" * 10
        late = b"\x80" + b"\x00" * 9
        assert time_period_for(DAY // 2, late) == time_period_for(DAY // 2, early) + 1

    def test_empty_permanent_id_rejected(self):
        with pytest.raises(CryptoError):
            time_period_for(0, b"")

    @given(times, st.binary(min_size=10, max_size=10))
    def test_boundaries_contain_now(self, now, pid):
        start, end = time_period_boundaries(now, pid)
        assert start <= now < end
        assert end - start == DAY

    @given(times, st.binary(min_size=10, max_size=10))
    def test_boundary_is_rotation_point(self, now, pid):
        start, end = time_period_boundaries(now, pid)
        assert time_period_for(start, pid) == time_period_for(now, pid)
        assert time_period_for(end, pid) == time_period_for(now, pid) + 1


class TestDescriptorId:
    def test_twenty_bytes(self):
        assert len(descriptor_id(ONION, FEB4, 0)) == 20

    def test_replicas_differ(self):
        assert descriptor_id(ONION, FEB4, 0) != descriptor_id(ONION, FEB4, 1)

    def test_stable_within_period(self):
        pid = bytes.fromhex(
            descriptor_id(ONION, FEB4, 0).hex()
        )  # just pin a value
        start, end = time_period_boundaries(FEB4, b"\x00" * 10)
        del pid, start, end
        assert descriptor_id(ONION, FEB4, 0) == descriptor_id(ONION, FEB4 + 3600, 0)

    def test_rotates_across_days(self):
        assert descriptor_id(ONION, FEB4, 0) != descriptor_id(ONION, FEB4 + DAY, 0)

    def test_bad_replica_rejected(self):
        with pytest.raises(CryptoError):
            descriptor_id(ONION, FEB4, 256)

    def test_invalid_onion_rejected(self):
        with pytest.raises(CryptoError):
            descriptor_id("nonsense.onion", FEB4, 0)

    def test_cookie_changes_id(self):
        assert descriptor_id(ONION, FEB4, 0) != descriptor_id(
            ONION, FEB4, 0, cookie=b"secret"
        )

    @settings(max_examples=50)
    @given(onions, times)
    def test_deterministic(self, onion, now):
        assert descriptor_id(onion, now, 0) == descriptor_id(onion, now, 0)

    @settings(max_examples=50)
    @given(onions, times)
    def test_day_ids_are_both_replicas(self, onion, now):
        ids = descriptor_ids_for_day(onion, now)
        assert len(ids) == REPLICAS
        assert len(set(ids)) == REPLICAS


class TestWindowDerivation:
    def test_window_covers_each_day(self):
        ids = descriptor_ids_for_window(ONION, FEB4, FEB4 + 3 * DAY)
        # 4 periods × 2 replicas (window edges may add one period).
        assert len(ids) in (8, 10)
        assert len(set(ids)) == len(ids)

    def test_single_instant_window(self):
        ids = descriptor_ids_for_window(ONION, FEB4, FEB4)
        assert set(ids) == set(descriptor_ids_for_day(ONION, FEB4))

    def test_backwards_window_rejected(self):
        with pytest.raises(CryptoError):
            descriptor_ids_for_window(ONION, FEB4, FEB4 - 1)

    @settings(max_examples=30)
    @given(onions, times, st.integers(min_value=0, max_value=12))
    def test_resolution_property(self, onion, start, days):
        """Any ID the service uses inside the window appears in the derived
        set — the invariant the Section V resolver relies on."""
        window_ids = set(descriptor_ids_for_window(onion, start, start + days * DAY))
        for day in range(days + 1):
            for current in descriptor_ids_for_day(onion, start + day * DAY):
                assert current in window_ids
