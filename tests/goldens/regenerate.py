#!/usr/bin/env python
"""Regenerate the golden report snapshots in this directory.

Run after an *intentional* behaviour change::

    PYTHONPATH=src python tests/goldens/regenerate.py

Each golden is the ``workers=1`` rendering of a small-world artifact (see
cases.py).  Review the diff before committing — a golden that moved without
a deliberate model change means determinism broke somewhere.
"""

from __future__ import annotations

import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.goldens.cases import GOLDEN_CASES  # noqa: E402


def main() -> int:
    for name, build in GOLDEN_CASES.items():
        target = HERE / f"{name}.txt"
        text = build()
        target.write_text(text + "\n", encoding="utf-8")
        print(f"[golden] wrote {target.relative_to(REPO)} ({len(text)} chars)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
