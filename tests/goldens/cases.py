"""Small-world experiment artifacts used by goldens and equivalence tests.

Every builder takes a ``workers`` argument and must return **byte-identical
text for any value of it** — that is the contract ``repro.parallel.pmap``
provides and the one thing these cases exist to pin down.  The golden files
in this directory are the ``workers=1`` renderings; ``regenerate.py``
rewrites them after an intentional behaviour change.

Keep the worlds tiny: these run inside tier-1.
"""

from __future__ import annotations

from typing import Optional

# Small-world parameters shared by the goldens and the serial≡parallel
# equivalence tests, so the two suites cross-check the same artifacts.
PIPELINE_SEED = 11
PIPELINE_SCALE = 0.02
#: Named profile pinned by the faulted golden/equivalence cases.
FAULTED_PROFILE = "moderate"
TABLE2_SEED = 2
TABLE2_SCALE = 0.02
TABLE2_SWEEP_HOURS = 4
SEC7_SEED = 6
SEC7_SCALE = 0.1


def pipeline_artifacts(
    workers: Optional[int] = None, fault_profile: str = "none"
) -> dict:
    """Fig 1 and Fig 2 artifact text off one shared scan/crawl/classify run.

    The profile is pinned explicitly (never read from ``REPRO_FAULTS``) so
    the goldens mean the same bytes no matter what environment CI exports.
    """
    from repro.experiments import run_fig1, run_fig2
    from repro.experiments.pipeline import MeasurementPipeline
    from repro.obs import render_text

    pipeline = MeasurementPipeline(
        seed=PIPELINE_SEED,
        scale=PIPELINE_SCALE,
        workers=workers,
        fault_profile=fault_profile,
    )
    fig1 = run_fig1(pipeline=pipeline)
    fig2 = run_fig2(pipeline=pipeline)
    return {
        "fig1_small": fig1.report.format() + "\n\n" + fig1.format_figure(),
        "fig2_small": fig2.report.format() + "\n\n" + fig2.format_figure(),
        # The full observability snapshot of the shared run: counters,
        # gauges, histograms, spans and events, rendered canonically.
        # Pinning it as a golden makes the snapshot itself subject to the
        # byte-identical-at-any-worker-count contract.
        "metrics_small": render_text(pipeline.observer),
    }


def faulted_pipeline_artifacts(workers: Optional[int] = None) -> dict:
    """The same artifacts with the ``moderate`` fault profile and retries on."""
    return pipeline_artifacts(workers=workers, fault_profile=FAULTED_PROFILE)


def table2_artifact(workers: Optional[int] = None) -> str:
    """Table II report + ranking text for the tiny sweep."""
    from repro.experiments import run_table2

    result = run_table2(
        seed=TABLE2_SEED,
        scale=TABLE2_SCALE,
        sweep_hours=TABLE2_SWEEP_HOURS,
        rotation_interval_hours=1,
        relays_per_ip=16,
        workers=workers,
    )
    return result.report.format() + "\n\n" + result.ranking.format_table(limit=20)


def build_sec7_world():
    """The Silk Road consensus history; independent of the worker count."""
    from repro.detection import SilkroadStudy, SilkroadStudyConfig

    return SilkroadStudy(
        SilkroadStudyConfig(seed=SEC7_SEED, scale=SEC7_SCALE)
    ).build()


def sec7_artifact(workers: Optional[int] = None, world=None) -> str:
    """Section VII report text; pass ``world`` to amortise the build."""
    from repro.experiments import run_sec7

    if world is None:
        world = build_sec7_world()
    return run_sec7(world=world, workers=workers).report.format()


#: name -> zero-argument builder for each pinned golden file.
def _golden_fig1() -> str:
    return pipeline_artifacts(workers=1)["fig1_small"]


def _golden_fig1_faulted() -> str:
    return faulted_pipeline_artifacts(workers=1)["fig1_small"]


def _golden_table2() -> str:
    return table2_artifact(workers=1)


def _golden_metrics() -> str:
    return pipeline_artifacts(workers=1)["metrics_small"]


def _golden_bench_schema() -> str:
    """The BENCH_*.json document shape, timing fields stripped.

    Runs the ``toy`` workload through the real runner for both kernels and
    pins the canonical JSON with ``strip_timing`` applied: everything left
    (field names, ordering, schema stamp, checksum, parameters) must be
    byte-identical on every machine, which is the contract that makes
    committed trajectories diffable.
    """
    from repro.bench import (
        Trajectory,
        canonical_json,
        run_workload,
        strip_timing,
        trajectory_to_dict,
    )

    trajectory = Trajectory(name="toy")
    for kernel in ("scalar", "batch"):
        trajectory.points.append(
            run_workload("toy", "smoke", kernel, repeats=1, warmup=0, label="golden")
        )
    return canonical_json(strip_timing(trajectory_to_dict(trajectory))).rstrip("\n")


GOLDEN_CASES = {
    "bench_toy_smoke": _golden_bench_schema,
    "fig1_small": _golden_fig1,
    "fig1_small_faulted": _golden_fig1_faulted,
    "metrics_small": _golden_metrics,
    "table2_small": _golden_table2,
}
