"""Golden report snapshots (see cases.py and regenerate.py)."""
