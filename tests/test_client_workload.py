"""Tests for repro.client.workload."""

import random

import pytest

from repro.client.workload import (
    PopularityWorkload,
    WorkloadSpec,
    zipf_weights,
)
from repro.crypto.keys import KeyPair
from repro.crypto.onion import onion_address_from_key
from repro.hs.service import HiddenService
from repro.sim.clock import HOUR
from repro.sim.rng import derive_rng


class TestZipfWeights:
    def test_first_rank_heaviest(self):
        weights = zipf_weights(10)
        assert weights[0] == max(weights)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, exponent=1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        assert len(set(zipf_weights(5, exponent=0.0))) == 1

    def test_rank_offset_continues_curve(self):
        head = zipf_weights(40, exponent=1.0)
        tail = zipf_weights(10, exponent=1.0, rank_offset=40)
        assert tail[0] == pytest.approx(head[-1] * 40 / 41)


def make_spec(network, publish=2, ghosts=2, start=None):
    services = []
    rng = random.Random(17)
    for _ in range(publish):
        service = HiddenService(keypair=KeyPair.generate(rng), online_from=0)
        network.publish_service(service)
        services.append(service)
    start = network.clock.now if start is None else start
    return WorkloadSpec(
        window_start=start,
        window_end=start + 2 * HOUR,
        named_rates={services[0].onion: 30} if services else {},
        tail_onions=[s.onion for s in services[1:]],
        tail_total=10,
        ghost_onions=[
            onion_address_from_key(rng.randbytes(140)) for _ in range(ghosts)
        ],
        ghost_total=20,
        client_count=10,
    )


class TestWorkloadSpec:
    def test_planned_fetches(self, network):
        spec = make_spec(network)
        assert spec.planned_fetches == 30 + 10 + 20


class TestWorkloadRun:
    def test_exact_fetch_counts(self, network):
        spec = make_spec(network)
        workload = PopularityWorkload(spec, derive_rng(1, "w"))
        report = workload.run(network)
        assert report.fetches_issued == spec.planned_fetches
        assert report.named_fetches == 30
        assert report.tail_fetches == 10
        assert report.ghost_fetches == 20

    def test_named_fetches_succeed_ghosts_fail(self, network):
        spec = make_spec(network)
        spec.skew_fraction = 0.0
        workload = PopularityWorkload(spec, derive_rng(2, "w"))
        report = workload.run(network)
        assert report.fetches_succeeded == 30 + 10

    def test_requests_land_in_directory_logs(self, network):
        spec = make_spec(network)
        PopularityWorkload(spec, derive_rng(3, "w")).run(network)
        total = sum(
            server.total_requests for server in network._hsdir_servers.values()
        )
        # Ghost fetches probe all 3 responsible dirs, so logged > issued.
        assert total >= spec.planned_fetches

    def test_ghost_ids_are_stable(self, network):
        """Phantom traffic replays *fixed* stale descriptor IDs (the stale
        search-engine model), so unique-ID counts stay bounded."""
        spec = make_spec(network, publish=0, ghosts=1)
        spec.named_rates = {}
        spec.tail_onions, spec.tail_total = [], 0
        PopularityWorkload(spec, derive_rng(4, "w")).run(network)
        ids = set()
        for server in network._hsdir_servers.values():
            ids.update(server.request_counts)
        assert len(ids) <= 2  # at most both replicas of the stale day

    def test_sliced_plan_preserves_totals(self, network):
        spec = make_spec(network)
        workload = PopularityWorkload(spec, derive_rng(5, "w"))
        planned = workload.plan_slices(4)
        assert planned.total_requests == spec.planned_fetches
        report = None
        from repro.client.workload import WorkloadReport

        report = WorkloadReport()
        for index in range(4):
            workload.run_slice(
                network,
                planned,
                index,
                spec.window_start + index * 1800,
                spec.window_start + (index + 1) * 1800,
                report=report,
            )
        assert report.fetches_issued == spec.planned_fetches
