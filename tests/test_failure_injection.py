"""Failure injection: the pipeline must degrade, not break.

The paper's measurements ran against a hostile substrate — churning hosts,
flapping relays, timeouts "we were persistently getting" — so every
component is exercised here under the corresponding failure.
"""

import random

import pytest

from repro.client.client import TorClient
from repro.client.guards import GuardSet
from repro.crypto.keys import KeyPair
from repro.hs.publisher import PublishScheduler
from repro.hs.service import HiddenService
from repro.net.endpoint import ConnectOutcome, ServiceEndpoint, SimpleHost
from repro.net.transport import OnionRegistry, TorTransport
from repro.population import generate_population
from repro.relay.relay import Relay
from repro.scan import PortScanner, ScanSchedule
from repro.sim.clock import DAY, HOUR
from repro.sim.rng import derive_rng
from repro.tornet import TorNetwork
from repro.trawl import TrawlAttack, TrawlConfig
from tests.conftest import make_network


class TestHonestChurnDuringHarvest:
    def test_harvest_survives_relay_deaths_mid_sweep(self):
        """A third of the honest ring dies during the sweep; the attack
        keeps collecting (coverage may even improve as the ring shrinks)."""
        population = generate_population(seed=41, scale=0.01)
        network, pool = make_network(seed=41, relay_count=120)
        publisher = PublishScheduler(network, population.services)
        publisher.publish_initial(network.clock.now)
        attack = TrawlAttack(
            network,
            TrawlConfig(ip_count=8, relays_per_ip=16, ripen_hours=26, sweep_hours=8),
            derive_rng(41, "a"),
            pool,
        )

        victims = iter(network.authority.monitored_relays[:40])

        def kill_a_few(sweep_hour, now):
            for _ in range(5):
                relay = next(victims, None)
                if relay is not None:
                    relay.set_reachable(False, now)

        harvest = attack.run(population.services, publisher, hour_hook=kill_a_few)
        assert len(harvest.onions) >= 0.8 * len(population.records)

    def test_services_dying_mid_harvest_are_partially_collected(self):
        population = generate_population(seed=42, scale=0.01)
        # Kill half the services before the sweep even starts.
        for record in population.records[::2]:
            record.service.online_until = population.harvest_date - 3 * DAY
        network, pool = make_network(seed=42, relay_count=100)
        publisher = PublishScheduler(network, population.services)
        publisher.publish_initial(network.clock.now)
        attack = TrawlAttack(
            network,
            TrawlConfig(ip_count=6, relays_per_ip=12, ripen_hours=26, sweep_hours=6),
            derive_rng(42, "a"),
            pool,
        )
        harvest = attack.run(population.services, publisher)
        alive = sum(
            1
            for record in population.records
            if record.service.is_online(network.clock.now)
        )
        assert len(harvest.onions) <= len(population.records)
        assert len(harvest.onions) >= 0.7 * alive


class TestFlappingRelays:
    def test_hsdir_flag_lost_and_descriptors_rehomed(self, network):
        service = HiddenService(
            keypair=KeyPair.generate(random.Random(43)), online_from=0
        )
        scheduler = PublishScheduler(network, [service])
        scheduler.publish_initial(network.clock.now)
        before = network.responsible_set(service.onion)
        # Flap every current responsible relay.
        for fingerprint in before:
            relay = network.relay_for_fingerprint(fingerprint)
            relay.set_reachable(False, network.clock.now)
        network.clock.advance_by(HOUR)
        network.rebuild_consensus()
        scheduler.maintain(network.clock.now)
        after = network.responsible_set(service.onion)
        assert before.isdisjoint(after)
        # The service is still fetchable from the new responsible set.
        rng = derive_rng(43, "f")
        assert network.fetch_onion(service.onion, rng) is not None

    def test_flapped_relay_returns_without_hsdir(self, network):
        relay = network.authority.monitored_relays[0]
        relay.set_reachable(False, network.clock.now)
        network.clock.advance_by(HOUR)
        network.rebuild_consensus()
        relay.set_reachable(True, network.clock.now)
        network.clock.advance_by(HOUR)
        consensus = network.rebuild_consensus()
        entry = consensus.entry_for(relay.fingerprint)
        from repro.relay.flags import RelayFlags

        assert entry is not None
        assert not entry.has(RelayFlags.HSDIR)  # 25-hour clock restarted


class TestDegenerateWorlds:
    def test_scan_of_fully_dead_population(self):
        registry = OnionRegistry()
        host = SimpleHost(online_from=0, online_until=1)  # long dead
        from repro.crypto.onion import onion_address_from_key

        onion = onion_address_from_key(b"deceased")
        registry.register(onion, host)
        transport = TorTransport(registry, derive_rng(44, "t"))
        schedule = ScanSchedule(start=10 * DAY, days=2)
        results = PortScanner(transport).run([onion], schedule)
        assert results.total_open_ports == 0
        assert results.port_distribution().as_rows()[-1] == ("other", 0)

    def test_fetch_against_empty_ring(self):
        """A network whose relays are all too young to be HSDirs."""
        network = TorNetwork()
        rng = derive_rng(45, "young")
        from repro.net.address import AddressPool

        pool = AddressPool(derive_rng(45, "ips"))
        for index in range(10):
            network.add_relay(
                Relay(
                    nickname=f"baby{index}",
                    ip=pool.allocate(),
                    or_port=9001,
                    keypair=KeyPair.generate(rng),
                    bandwidth=1000,
                    started_at=0,
                )
            )
        network.rebuild_consensus(HOUR)  # 1 h uptime: nobody is an HSDir
        assert network.consensus.hsdir_count == 0
        service = HiddenService(keypair=KeyPair.generate(rng), online_from=0)
        assert network.publish_service(service) == 0
        assert network.fetch_onion(service.onion, rng) is None

    def test_guards_with_no_guard_flagged_relays(self):
        network = TorNetwork()
        rng = derive_rng(46, "young")
        from repro.net.address import AddressPool

        pool = AddressPool(derive_rng(46, "ips"))
        for index in range(5):
            network.add_relay(
                Relay(
                    nickname=f"n{index}",
                    ip=pool.allocate(),
                    or_port=9001,
                    keypair=KeyPair.generate(rng),
                    bandwidth=10,  # too slow for Guard
                    started_at=0,
                )
            )
        network.rebuild_consensus(30 * DAY)
        guards = GuardSet(derive_rng(46, "g"))
        guards.refresh(network.consensus, network.clock.now)
        assert guards.fingerprints == []  # empty set, no crash

    def test_client_fetch_without_guards_still_fetches(self, network):
        service = HiddenService(
            keypair=KeyPair.generate(random.Random(47)), online_from=0
        )
        network.publish_service(service)
        client = TorClient(ip=9, rng=derive_rng(47, "c"))
        # never refresh_guards
        assert client.fetch_onion(network, service.onion) is not None


class TestLossyTransport:
    def test_crawler_survives_circuit_timeouts(self, small_population):
        from repro.crawl import Crawler
        from repro.crawl.page import PageKind

        transport = TorTransport(
            small_population.registry,
            derive_rng(48, "t"),
            descriptor_available=small_population.descriptor_available,
            circuit_timeout_probability=0.5,
        )
        crawler = Crawler(transport)
        destinations = [
            (record.onion, 80)
            for record in small_population.records_in_group("http-content")[:60]
        ]
        results = crawler.crawl(destinations, small_population.crawl_date)
        dead = len(results.by_kind(PageKind.DEAD))
        # Roughly half the attempts die to timeouts; the rest still parse.
        assert 0.3 * len(destinations) <= dead <= 0.7 * len(destinations)
        assert results.connected == len(destinations) - dead

    def test_scanner_records_timeouts_separately(self):
        registry = OnionRegistry()
        from repro.crypto.onion import onion_address_from_key

        onion = onion_address_from_key(b"flaky")
        host = SimpleHost(online_from=0)
        host.add_endpoint(ServiceEndpoint(port=80, timeout_probability=1.0))
        registry.register(onion, host)
        transport = TorTransport(registry, derive_rng(49, "t"))
        results = PortScanner(transport).run(
            [onion], ScanSchedule(start=0, days=1)
        )
        assert results.timeouts >= 1
        assert results.total_open_ports == 0
        assert (
            transport.connect(onion, 80, now=0).outcome is ConnectOutcome.TIMEOUT
        )


class TestSchedulerResilience:
    def test_maintain_with_service_that_dies_between_calls(self, network):
        service = HiddenService(
            keypair=KeyPair.generate(random.Random(50)),
            online_from=0,
            online_until=network.clock.now + HOUR,
        )
        scheduler = PublishScheduler(network, [service])
        scheduler.publish_initial(network.clock.now)
        network.clock.advance_by(2 * HOUR)
        network.rebuild_consensus()
        assert scheduler.publish_due(network.clock.now + DAY) == 0
        # maintain() also skips it.
        assert scheduler.maintain(network.clock.now) == 0

    def test_rotation_interval_longer_than_sweep(self, network_and_pool):
        """Degenerate-but-legal config: a single wave, no rotation."""
        network, pool = network_and_pool
        population = generate_population(seed=51, scale=0.005)
        publisher = PublishScheduler(network, population.services)
        publisher.publish_initial(network.clock.now)
        attack = TrawlAttack(
            network,
            TrawlConfig(
                ip_count=4,
                relays_per_ip=4,
                ripen_hours=26,
                sweep_hours=2,
                rotation_interval_hours=10,
            ),
            derive_rng(51, "a"),
            pool,
        )
        harvest = attack.run(population.services, publisher)
        # One wave of 8 relays: partial but non-empty coverage.
        assert 0 < len(harvest.onions) <= len(population.records)
