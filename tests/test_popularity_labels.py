"""Tests for repro.popularity.labels — the Goldnet forensic chain."""

from repro.net.transport import TorTransport
from repro.popularity.labels import ServiceLabeler, investigate_goldnet
from repro.popularity.ranking import PopularityRanking
from repro.sim.rng import derive_rng


class TestServiceLabeler:
    def test_known_labels(self):
        labeler = ServiceLabeler()
        labeler.add_known("aa" * 8 + ".onion", "Silk Road")
        labeler.add_known_many({"bb" * 8 + ".onion": "DuckDuckGo"})
        labels = labeler.labels_for(["aa" * 8 + ".onion", "cc" * 8 + ".onion"])
        assert labels == {"aa" * 8 + ".onion": "Silk Road"}


class TestGoldnetInvestigation:
    def test_finds_fronts_and_groups_servers(self, small_population):
        """Build a fake ranking with the goldnet fronts on top and check the
        503/server-status chain labels them and groups them by machine."""
        transport = TorTransport(
            small_population.registry,
            derive_rng(1, "probe"),
            descriptor_available=small_population.descriptor_available,
        )
        goldnet = small_population.records_in_group("goldnet")
        http_content = small_population.records_in_group("http-content")
        counts = {r.onion: 1000 - i for i, r in enumerate(goldnet)}
        counts.update({r.onion: 10 + i for i, r in enumerate(http_content[:20])})
        ranking = PopularityRanking.from_counts(counts)

        labels, findings = investigate_goldnet(
            transport, ranking, when=small_population.harvest_date
        )
        assert len(findings) == len(goldnet)
        assert set(labels.values()) == {"Goldnet"}
        groups = {finding.server_group for finding in findings}
        assert len(groups) == len(small_population.spec.goldnet_server_split)
        # Traffic forensics match the planted ~330 kB/s, ~10 req/s profile.
        for finding in findings:
            assert 250 <= finding.kbytes_per_sec <= 400
            assert 8.0 <= finding.requests_per_sec <= 12.0

    def test_already_labelled_rows_skipped(self, small_population):
        transport = TorTransport(
            small_population.registry,
            derive_rng(2, "probe"),
            descriptor_available=small_population.descriptor_available,
        )
        goldnet = small_population.records_in_group("goldnet")
        counts = {r.onion: 500 for r in goldnet}
        ranking = PopularityRanking.from_counts(
            counts, {r.onion: "KnownThing" for r in goldnet}
        )
        labels, findings = investigate_goldnet(
            transport, ranking, when=small_population.harvest_date
        )
        assert not labels
        assert not findings

    def test_ordinary_sites_not_flagged(self, small_population):
        transport = TorTransport(
            small_population.registry,
            derive_rng(3, "probe"),
            descriptor_available=small_population.descriptor_available,
        )
        sites = small_population.records_in_group("http-content")[:30]
        ranking = PopularityRanking.from_counts({r.onion: 100 for r in sites})
        labels, findings = investigate_goldnet(
            transport, ranking, when=small_population.harvest_date
        )
        assert not labels
        assert not findings
