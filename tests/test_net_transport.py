"""Tests for repro.net.transport."""

import random

import pytest

from repro.crypto.onion import onion_address_from_key
from repro.errors import NetworkError
from repro.net.endpoint import ConnectOutcome, ServiceEndpoint, SimpleHost
from repro.net.transport import OnionRegistry, TorTransport

ONION = onion_address_from_key(b"svc")
OTHER = onion_address_from_key(b"other")


def make_host(ports=(80,), online_until=None, abnormal=()):
    host = SimpleHost(online_from=0, online_until=online_until)
    for port in ports:
        host.add_endpoint(
            ServiceEndpoint(port=port, abnormal_error=port in abnormal, banner=f"b{port}")
        )
    return host


class TestOnionRegistry:
    def test_register_and_lookup(self):
        registry = OnionRegistry()
        host = make_host()
        registry.register(ONION, host)
        assert registry.lookup(ONION) is host
        assert len(registry) == 1
        assert ONION in registry

    def test_unknown_lookup(self):
        assert OnionRegistry().lookup(ONION) is None

    def test_duplicate_rejected(self):
        registry = OnionRegistry()
        registry.register(ONION, make_host())
        with pytest.raises(NetworkError):
            registry.register(ONION, make_host())

    def test_invalid_onion_rejected(self):
        with pytest.raises(NetworkError):
            OnionRegistry().register("bogus.onion", make_host())


class TestConnect:
    def setup_method(self):
        self.registry = OnionRegistry()
        self.registry.register(ONION, make_host(ports=(80, 55080), abnormal={55080}))
        self.transport = TorTransport(self.registry, random.Random(0))

    def test_open_port(self):
        result = self.transport.connect(ONION, 80, now=0)
        assert result.outcome is ConnectOutcome.OPEN
        assert result.banner == "b80"

    def test_closed_port_refused(self):
        result = self.transport.connect(ONION, 81, now=0)
        assert result.outcome is ConnectOutcome.REFUSED

    def test_abnormal_error_surfaces(self):
        result = self.transport.connect(ONION, 55080, now=0)
        assert result.outcome is ConnectOutcome.ABNORMAL_ERROR

    def test_unknown_onion_unreachable(self):
        result = self.transport.connect(OTHER, 80, now=0)
        assert result.outcome is ConnectOutcome.UNREACHABLE

    def test_offline_host_unreachable(self):
        registry = OnionRegistry()
        registry.register(ONION, make_host(online_until=100))
        transport = TorTransport(registry, random.Random(0))
        assert transport.connect(ONION, 80, now=50).outcome is ConnectOutcome.OPEN
        assert (
            transport.connect(ONION, 80, now=150).outcome
            is ConnectOutcome.UNREACHABLE
        )

    def test_descriptor_gate(self):
        transport = TorTransport(
            self.registry,
            random.Random(0),
            descriptor_available=lambda onion, now: False,
        )
        assert (
            transport.connect(ONION, 80, now=0).outcome is ConnectOutcome.UNREACHABLE
        )
        assert not transport.has_descriptor(ONION, 0)

    def test_has_descriptor_defaults_true(self):
        assert self.transport.has_descriptor(ONION, 0)

    def test_circuit_timeouts(self):
        transport = TorTransport(
            self.registry, random.Random(0), circuit_timeout_probability=1.0
        )
        assert transport.connect(ONION, 80, now=0).outcome is ConnectOutcome.TIMEOUT

    def test_bad_timeout_probability_rejected(self):
        with pytest.raises(NetworkError):
            TorTransport(self.registry, random.Random(0), circuit_timeout_probability=2)

    def test_attempt_counter(self):
        before = self.transport.attempts
        self.transport.connect(ONION, 80, now=0)
        assert self.transport.attempts == before + 1


class TestScanPorts:
    def setup_method(self):
        self.registry = OnionRegistry()
        self.registry.register(
            ONION, make_host(ports=(22, 80, 443, 55080), abnormal={55080})
        )
        self.transport = TorTransport(self.registry, random.Random(0))

    def test_finds_open_ports_in_range(self):
        results = self.transport.scan_ports(ONION, range(1, 100), now=0)
        assert sorted(results) == [22, 80]

    def test_finds_abnormal(self):
        results = self.transport.scan_ports(ONION, range(55000, 56000), now=0)
        assert results[55080].outcome is ConnectOutcome.ABNORMAL_ERROR

    def test_port_list_works(self):
        results = self.transport.scan_ports(ONION, [443, 8080], now=0)
        assert sorted(results) == [443]

    def test_unreachable_is_empty(self):
        assert self.transport.scan_ports(OTHER, range(1, 65536), now=0) == {}

    def test_matches_individual_connects(self):
        """Batch scanning must be observationally equivalent to per-port
        connects (modulo RNG draws)."""
        batch = self.transport.scan_ports(ONION, range(1, 65536), now=0)
        for port in (22, 80, 443, 55080):
            single = TorTransport(self.registry, random.Random(0)).connect(
                ONION, port, now=0
            )
            assert batch[port].outcome == single.outcome
