"""Tests for repro.popularity.timeseries — traffic-shape forensics."""

import pytest

from repro.errors import ReproError
from repro.hsdir.directory import HSDirServer
from repro.popularity.timeseries import (
    RequestTimeSeries,
    classify_services_by_shape,
    merge_series,
    series_from_log,
)
from repro.sim.clock import DAY, HOUR
from repro.sim.rng import derive_rng


def constant_series(rate=50, buckets=24, seed=0):
    rng = derive_rng(seed, "const")
    counts = [sum(1 for _ in range(rate * 2) if rng.random() < 0.5) for _ in range(buckets)]
    return RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=counts)


def diurnal_series(base=50, buckets=24, seed=0):
    import math

    rng = derive_rng(seed, "diurnal")
    counts = []
    for hour in range(buckets):
        mean = base * (1 + 0.8 * math.cos(2 * math.pi * (hour - 20) / 24))
        counts.append(max(0, round(mean + rng.gauss(0, math.sqrt(max(1, mean))))))
    return RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=counts)


class TestRequestTimeSeries:
    def test_totals_and_mean(self):
        series = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[1, 2, 3])
        assert series.total == 6
        assert series.mean_rate == 2.0

    def test_bad_bucket_width(self):
        with pytest.raises(ReproError):
            RequestTimeSeries(start=0, bucket_seconds=0, counts=[])

    def test_constant_traffic_is_machine_like(self):
        assert constant_series().is_machine_like()

    def test_diurnal_traffic_is_not(self):
        assert not diurnal_series().is_machine_like()

    def test_cv_ordering(self):
        assert (
            constant_series().coefficient_of_variation()
            < diurnal_series().coefficient_of_variation()
        )

    def test_empty_series_cv(self):
        series = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[0, 0])
        assert series.coefficient_of_variation() == 0.0
        assert series.poisson_floor() == 0.0

    def test_zero_traffic_is_not_machine_like(self):
        # CV and the Poisson floor are both 0.0 for a silent series, which
        # used to satisfy ``cv <= tolerance * floor`` vacuously.  No traffic
        # carries no shape evidence: neither machine- nor human-like.
        silent = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[0, 0, 0])
        empty = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[])
        assert not silent.is_machine_like()
        assert not empty.is_machine_like()

    def test_zero_traffic_never_classified_machine(self):
        silent = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[0] * 24)
        # Default threshold: a silent service is low-volume …
        assert classify_services_by_shape({"ghost": silent}) == {
            "ghost": "low-volume"
        }
        # … and even with the volume gate disabled it must not be labelled
        # a timer-driven (machine) source.
        labels = classify_services_by_shape({"ghost": silent}, min_requests=0)
        assert labels["ghost"] != "machine"

    def test_sparkline(self):
        series = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[0, 4, 8])
        line = series.format_sparkline()
        assert len(line) == 3
        assert line[-1] == "█"


class TestSeriesFromLog:
    def make_server_with_requests(self, times, desc_id=b"\x01" * 20):
        server = HSDirServer(relay_id=1)
        for t in times:
            server.fetch(desc_id, now=t)
        return server

    def test_bucketing(self):
        server = self.make_server_with_requests([10, 20, HOUR + 5, 3 * HOUR - 1])
        series = series_from_log(server, 0, 4 * HOUR)
        assert series.counts == [2, 1, 1, 0]

    def test_window_filtering(self):
        server = self.make_server_with_requests([10, 5 * HOUR])
        series = series_from_log(server, 0, 2 * HOUR)
        assert series.total == 1

    def test_descriptor_filter(self):
        server = HSDirServer(relay_id=1)
        server.fetch(b"\x01" * 20, now=10)
        server.fetch(b"\x02" * 20, now=20)
        series = series_from_log(
            server, 0, HOUR, descriptor_ids=[b"\x01" * 20]
        )
        assert series.total == 1

    def test_empty_window_rejected(self):
        with pytest.raises(ReproError):
            series_from_log(HSDirServer(relay_id=1), 10, 10)


class TestMergeAndClassify:
    def test_merge_sums_counts(self):
        a = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[1, 2])
        b = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[3, 4])
        merged = merge_series([a, b])
        assert merged.counts == [4, 6]

    def test_merge_misaligned_rejected(self):
        a = RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[1])
        b = RequestTimeSeries(start=HOUR, bucket_seconds=HOUR, counts=[1])
        with pytest.raises(ReproError):
            merge_series([a, b])

    def test_merge_empty_rejected(self):
        with pytest.raises(ReproError):
            merge_series([])

    def test_classification_labels(self):
        labels = classify_services_by_shape(
            {
                "botnet": constant_series(),
                "market": diurnal_series(),
                "tiny": RequestTimeSeries(start=0, bucket_seconds=HOUR, counts=[1, 0]),
            }
        )
        assert labels == {
            "botnet": "machine",
            "market": "human",
            "tiny": "low-volume",
        }


class TestDiurnalWorkloadIntegration:
    def test_diurnal_onions_follow_the_curve(self, network):
        """End to end: a diurnal service's slice allocation peaks in the
        evening; a flat (botnet-like) one does not."""
        import random

        from repro.client.workload import PopularityWorkload, WorkloadSpec
        from repro.crypto.keys import KeyPair
        from repro.hs.service import HiddenService

        rng = random.Random(5)
        human = HiddenService(keypair=KeyPair.generate(rng), online_from=0)
        botnet = HiddenService(keypair=KeyPair.generate(rng), online_from=0)
        network.publish_service(human)
        network.publish_service(botnet)
        start = (network.clock.now // DAY) * DAY  # midnight-aligned
        spec = WorkloadSpec(
            window_start=start,
            window_end=start + DAY,
            named_rates={human.onion: 4800, botnet.onion: 4800},
            diurnal_onions={human.onion},
            client_count=10,
        )
        workload = PopularityWorkload(spec, derive_rng(6, "w"))
        slice_starts = [start + hour * HOUR for hour in range(24)]
        planned = workload.plan_slices(24, slice_starts=slice_starts)
        human_buckets = planned.buckets[(human.onion, "named")]
        botnet_buckets = planned.buckets[(botnet.onion, "named")]
        human_series = RequestTimeSeries(
            start=start, bucket_seconds=HOUR, counts=human_buckets
        )
        botnet_series = RequestTimeSeries(
            start=start, bucket_seconds=HOUR, counts=botnet_buckets
        )
        assert not human_series.is_machine_like()
        assert botnet_series.is_machine_like(tolerance=2.5)
        # Evening (20:00) beats early morning (08:00) for the human service.
        assert human_buckets[20] > human_buckets[8]