"""The HTTP front-end: a real server on an ephemeral port.

tests/ is exempt from REP015, so this file may use ``http.client``
directly; production code outside ``repro/service`` may not.
"""

import http.client
import json
import threading

import pytest

from repro.obs.scope import Observer
from repro.service import ServiceRouter, serve


@pytest.fixture(scope="module")
def live_server(service_controller):
    """A serving ServiceHTTPServer on port 0, torn down after the module."""
    router = ServiceRouter(
        service_controller.records, observer=Observer(name="http-test")
    )
    server = serve(router, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def fetch(server, path, headers=None):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestLiveServer:
    def test_healthz_over_the_wire(self, live_server):
        status, headers, body = fetch(live_server, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json; charset=utf-8"
        document = json.loads(body.decode("utf-8"))
        assert document["status"] == "ok"
        assert document["epochs"] == 3

    def test_response_framing_is_pinned(self, live_server):
        _status, headers, _body = fetch(live_server, "/healthz")
        assert headers["Server"] == "repro-service"
        assert headers["Date"] == "Thu, 01 Jan 1970 00:00:00 GMT"

    def test_ranking_200_then_304_on_conditional_refetch(self, live_server):
        status, headers, body = fetch(live_server, "/v1/epochs/0/ranking")
        assert status == 200
        assert body
        etag = headers["ETag"]
        assert etag.startswith('"sha256:')

        status, headers, body = fetch(
            live_server,
            "/v1/epochs/0/ranking",
            headers={"If-None-Match": etag},
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_wire_body_matches_in_process_router(
        self, live_server, service_controller
    ):
        _status, _headers, body = fetch(live_server, "/v1/epochs/latest/delta")
        in_process = live_server.router.handle(
            "GET", "/v1/epochs/latest/delta"
        )
        assert body == in_process.body

    def test_concurrent_requests_all_succeed(self, live_server):
        results = []
        lock = threading.Lock()

        def worker():
            status, _headers, _body = fetch(live_server, "/v1/epochs")
            with lock:
                results.append(status)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert results == [200] * 12
