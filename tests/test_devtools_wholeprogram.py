"""Tests for the whole-program analysis layer.

Covers the shared engine (:mod:`repro.devtools.callgraph` and the AST
cache), the three project rules REP011/REP012/REP013 against seeded
fixture packages, SARIF byte-stability, autofix idempotency, and the
``repro store verify`` fingerprint-drift cross-check.
"""

import json
import os
import shutil
import textwrap

from repro.cli import main as cli_main
from repro.devtools import run_lint
from repro.devtools.astcache import AstCache
from repro.devtools.autofix import apply_fixes
from repro.devtools.callgraph import ProjectContext
from repro.devtools.engine import iter_python_files
from repro.devtools.sarif import render_sarif
from repro.devtools.storecheck import fingerprint_drift, stage_declarations

REPRO_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def write_package(root, files):
    """Materialise ``{relative_path: source}`` as a package tree."""
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        probe = target.parent
        while probe != root:
            init = probe / "__init__.py"
            if not init.exists():
                init.write_text("")
            probe = probe.parent


def project_for(root):
    cache = AstCache()
    return ProjectContext(cache.contexts(iter_python_files([str(root)])))


def lint_package(root, rules=None):
    return run_lint([str(root)], rule_ids=rules).findings


class TestCallGraph:
    def fixture(self, tmp_path):
        write_package(
            tmp_path,
            {
                "demo/core.py": """
                    LABEL = "alpha"

                    def helper(x):
                        return x

                    class Engine:
                        def run(self):
                            return helper(1)
                """,
                "demo/app.py": """
                    from demo.core import LABEL, helper

                    def main():
                        from demo import extra
                        return helper(LABEL)
                """,
                "demo/extra.py": "VALUE = 2\n",
            },
        )
        return project_for(tmp_path / "demo")

    def test_indexes_functions_and_methods(self, tmp_path):
        project = self.fixture(tmp_path)
        assert "demo.core:helper" in project.functions
        assert "demo.core:Engine.run" in project.functions
        assert "demo.app:main" in project.functions
        assert project.functions["demo.core:Engine.run"].is_method

    def test_calls_resolve_across_modules(self, tmp_path):
        project = self.fixture(tmp_path)
        sites = project.calls_to["demo.core:helper"]
        callers = sorted(site.caller for site in sites)
        assert callers == ["demo.app:main", "demo.core:Engine.run"]

    def test_import_closure_includes_function_local_imports(self, tmp_path):
        project = self.fixture(tmp_path)
        closure = project.import_closure("demo.app")
        assert closure == {"demo.app", "demo.core", "demo.extra"}
        # The runtime graph (REP006 semantics) must NOT see the
        # function-local import.
        graph, _ = project.runtime_import_graph()
        assert "demo.extra" not in graph["demo.app"]

    def test_resolves_constants_across_modules(self, tmp_path):
        project = self.fixture(tmp_path)
        ctx = project.by_module["demo.app"]
        call = next(
            record
            for record in project.call_records
            if record.callee == "demo.core:helper" and record.ctx is ctx
        )
        folded, value = project.resolve_constant(ctx, call.node.args[0])
        assert folded and value == "alpha"

    def test_param_bindings_collects_every_call_site(self, tmp_path):
        write_package(
            tmp_path,
            {
                "wires/flow.py": """
                    def wire(label):
                        return label

                    def first():
                        return wire("x")

                    def second():
                        return wire("y")
                """,
            },
        )
        project = project_for(tmp_path / "wires")
        bindings = project.param_bindings("wires.flow:wire", "label")
        assert bindings is not None
        assert [value for _, value in bindings] == ["x", "y"]


class TestAstCacheParsesOnce:
    def test_repeat_lint_reuses_parses(self, tmp_path):
        write_package(
            tmp_path,
            {"once/a.py": "A = 1\n", "once/b.py": "B = 2\n"},
        )
        cache = AstCache()
        run_lint([str(tmp_path / "once")], cache=cache)
        first = cache.parses
        assert first == len(cache)
        run_lint([str(tmp_path / "once")], cache=cache)
        assert cache.parses == first


class TestRep011Lineage:
    def test_detects_direct_label_collision(self, tmp_path):
        write_package(
            tmp_path,
            {
                "lineage/streams.py": """
                    from repro.sim.rng import derive_rng

                    def one(master):
                        return derive_rng(master, "scan")

                    def two(master):
                        return derive_rng(master, "scan")
                """,
            },
        )
        findings = lint_package(tmp_path / "lineage", rules=["REP011"])
        assert len(findings) == 1
        assert "is also derived at" in findings[0].message

    def test_detects_collision_through_parameter_fork(self, tmp_path):
        write_package(
            tmp_path,
            {
                "forked/flow.py": """
                    from repro.sim.rng import derive_rng

                    def make(master, label):
                        return derive_rng(master, label)

                    def first(master):
                        return make(master, "alpha")

                    def second(master):
                        return make(master, "alpha")
                """,
            },
        )
        findings = lint_package(tmp_path / "forked", rules=["REP011"])
        assert len(findings) == 1
        assert "alpha" in findings[0].message

    def test_distinct_labels_do_not_collide(self, tmp_path):
        write_package(
            tmp_path,
            {
                "clean/streams.py": """
                    from repro.sim.rng import derive_rng

                    def one(master):
                        return derive_rng(master, "scan")

                    def two(master):
                        return derive_rng(master, "crawl")
                """,
            },
        )
        assert lint_package(tmp_path / "clean", rules=["REP011"]) == []

    def test_detects_module_scope_escape(self, tmp_path):
        write_package(
            tmp_path,
            {"escape/state.py": "import random\n\nSTATE = random.Random(3)\n"},
        )
        findings = lint_package(tmp_path / "escape", rules=["REP011"])
        assert len(findings) == 1
        assert "escapes into a module" in findings[0].message

    def test_detects_default_argument_escape(self, tmp_path):
        write_package(
            tmp_path,
            {
                "defaults/fn.py": """
                    import random

                    def draw(rng=random.Random(0)):
                        return rng.random()
                """,
            },
        )
        findings = lint_package(tmp_path / "defaults", rules=["REP011"])
        assert len(findings) == 1
        assert "default" in findings[0].message


class TestRep012Coverage:
    def fixture(self, tmp_path):
        write_package(
            tmp_path,
            {
                "demo/metrics.py": "def tally(xs):\n    return sum(xs)\n",
                "demo/flow.py": """
                    from repro.store import Stage

                    from demo.metrics import tally

                    def build(store):
                        return Stage(
                            name="demo",
                            modules=("demo.flow",),
                            compute=lambda: tally([1]),
                            store=store,
                        )
                """,
            },
        )
        return tmp_path / "demo"

    def test_detects_closure_gap(self, tmp_path):
        root = self.fixture(tmp_path)
        findings = lint_package(root, rules=["REP012"])
        assert len(findings) == 1
        assert "demo.metrics" in findings[0].message
        assert findings[0].fix is not None
        assert '"demo.metrics"' in findings[0].fix.replacement

    def test_fix_closes_the_gap_and_is_idempotent(self, tmp_path):
        root = self.fixture(tmp_path)
        findings = lint_package(root, rules=["REP012"])
        result = apply_fixes(findings)
        assert result.applied == 1
        assert lint_package(root, rules=["REP012"]) == []
        # Applying the (now empty) fix set again changes nothing.
        again = apply_fixes(lint_package(root, rules=["REP012"]))
        assert again.applied == 0

    def test_covered_stage_is_clean(self, tmp_path):
        root = self.fixture(tmp_path)
        flow = root / "flow.py"
        flow.write_text(
            flow.read_text().replace(
                '("demo.flow",)', '("demo.flow", "demo.metrics")'
            )
        )
        assert lint_package(root, rules=["REP012"]) == []

    def test_stage_declarations_resolve_statically(self, tmp_path):
        root = self.fixture(tmp_path)
        declarations = stage_declarations((str(root),))
        assert declarations == {"demo": ("demo.flow",)}


class TestRep013ShardSafety:
    def lint(self, tmp_path, body, name="shard.py"):
        target = tmp_path / name
        target.write_text(textwrap.dedent(body))
        return run_lint([str(target)], rule_ids=["REP013"]).findings

    def test_detects_captured_state_mutation(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            from repro.parallel import pmap

            def run(items):
                results = []

                def worker(item, item_rng):
                    results.append(item)
                    return item

                return pmap(worker, items)
            """,
        )
        assert len(findings) == 1
        assert "mutates captured state 'results'" in findings[0].message

    def test_detects_argument_mutation(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            from repro.parallel import pmap

            def run(shared, items):
                def worker(item, item_rng):
                    shared.update({item: True})
                    return item

                return pmap(worker, items)
            """,
        )
        assert findings
        assert any("captured state 'shared'" in f.message for f in findings)

    def test_detects_ambient_randomness(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            import random

            from repro.parallel import pmap

            def run(items):
                def worker(item, item_rng):
                    return item + random.random()

                return pmap(worker, items)
            """,
        )
        assert len(findings) == 1
        assert "random.random()" in findings[0].message

    def test_pure_worker_with_item_rng_is_clean(self, tmp_path):
        findings = self.lint(
            tmp_path,
            """
            from repro.parallel import pmap

            def run(items):
                def worker(item, item_rng):
                    return item + item_rng.random()

                return pmap(worker, items)
            """,
        )
        assert findings == []


class TestSarifOutput:
    def seed_violation(self, tmp_path):
        target = tmp_path / "seeded.py"
        target.write_text("import random\nrng = random.Random(0)\n")
        return target

    def test_sarif_is_byte_stable(self, tmp_path):
        target = self.seed_violation(tmp_path)
        findings = run_lint([str(target)]).findings
        first = render_sarif(findings)
        second = render_sarif(findings)
        assert first == second
        assert first.endswith("\n")

    def test_sarif_document_shape(self, tmp_path):
        target = self.seed_violation(tmp_path)
        document = json.loads(render_sarif(run_lint([str(target)]).findings))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "REP011" in rule_ids and "REP013" in rule_ids
        results = run["results"]
        assert results
        for result in results:
            assert result["partialFingerprints"]

    def test_cli_sarif_output_is_stable(self, tmp_path, capsys):
        target = self.seed_violation(tmp_path)
        assert cli_main(["lint", str(target), "--format", "sarif"]) == 1
        first = capsys.readouterr().out
        assert cli_main(["lint", str(target), "--format", "sarif"]) == 1
        assert capsys.readouterr().out == first
        json.loads(first)


class TestCliFix:
    def test_fix_rewrites_and_is_idempotent(self, tmp_path, capsys):
        target = tmp_path / "order.py"
        target.write_text("def names(xs):\n    return list(set(xs))\n")
        assert cli_main(["lint", str(target), "--fix", "--rules", "REP005"]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) fixed" in out
        assert "sorted(set(xs))" in target.read_text()
        after_first = target.read_text()
        assert cli_main(["lint", str(target), "--fix", "--rules", "REP005"]) == 0
        assert "file(s) fixed" not in capsys.readouterr().out
        assert target.read_text() == after_first


class TestStoreDrift:
    def build_store(self, tmp_path):
        root = str(tmp_path / "store")
        assert cli_main(["fig1", "--scale", "0.02", "--store", root]) == 0
        from repro.store.checkpoint import ArtifactStore

        return ArtifactStore(root)

    def test_clean_tree_reports_no_drift(self, tmp_path, capsys):
        store = self.build_store(tmp_path)
        capsys.readouterr()
        assert fingerprint_drift(store, (REPRO_SRC,)) == []

    def test_edited_declaration_reports_drift(self, tmp_path, capsys):
        store = self.build_store(tmp_path)
        capsys.readouterr()
        copy = tmp_path / "src" / "repro"
        shutil.copytree(REPRO_SRC, copy)
        pipeline = copy / "experiments" / "pipeline.py"
        edited = pipeline.read_text().replace('    "repro.sim.rng",\n', "")
        assert edited != pipeline.read_text()
        pipeline.write_text(edited)
        drift = fingerprint_drift(store, (str(copy),))
        assert drift
        assert all("drift" in line for line in drift)
        stages = {line.split()[1] for line in drift}
        assert "scan" in stages
