"""Tests for repro.hsdir.directory."""

import pytest

from repro.errors import DescriptorError
from repro.hsdir.directory import HSDirServer, StoredDescriptor
from repro.sim.clock import DAY, HOUR


def make_stored(desc_id=b"\x01" * 20, published_at=0, der=b"key"):
    return StoredDescriptor(
        descriptor_id=desc_id, public_der=der, replica=0, published_at=published_at
    )


class TestStoreAndFetch:
    def test_roundtrip(self):
        server = HSDirServer(relay_id=1)
        server.store(make_stored(), now=0)
        assert server.fetch(b"\x01" * 20, now=HOUR) is not None

    def test_missing_descriptor(self):
        server = HSDirServer(relay_id=1)
        assert server.fetch(b"\x02" * 20, now=0) is None

    def test_bad_descriptor_id_rejected(self):
        server = HSDirServer(relay_id=1)
        with pytest.raises(DescriptorError):
            server.store(make_stored(desc_id=b"short"), now=0)

    def test_store_replaces(self):
        server = HSDirServer(relay_id=1)
        server.store(make_stored(der=b"old"), now=0)
        server.store(make_stored(der=b"new", published_at=1), now=1)
        assert server.fetch(b"\x01" * 20, now=2).public_der == b"new"

    def test_publish_counter(self):
        server = HSDirServer(relay_id=1)
        server.store(make_stored(), now=0)
        server.store(make_stored(desc_id=b"\x02" * 20), now=0)
        assert server.publishes_received == 2


class TestExpiry:
    def test_descriptor_expires_after_retention(self):
        """HSDirs 'responsible for the previous time period erase its
        descriptor from the memory' (Section II)."""
        server = HSDirServer(relay_id=1)
        server.store(make_stored(published_at=0), now=0)
        assert server.fetch(b"\x01" * 20, now=DAY - 1) is not None
        assert server.fetch(b"\x01" * 20, now=DAY + 1) is None

    def test_stored_descriptors_filters_expired(self):
        server = HSDirServer(relay_id=1)
        server.store(make_stored(published_at=0), now=0)
        server.store(
            make_stored(desc_id=b"\x02" * 20, published_at=DAY), now=DAY
        )
        remaining = server.stored_descriptors(now=DAY + HOUR)
        assert [d.descriptor_id for d in remaining] == [b"\x02" * 20]


class TestRequestAccounting:
    def test_counts_found_and_missing(self):
        server = HSDirServer(relay_id=1)
        server.store(make_stored(), now=0)
        server.fetch(b"\x01" * 20, now=1)
        server.fetch(b"\x01" * 20, now=2)
        server.fetch(b"\x09" * 20, now=3)
        assert server.request_counts[b"\x01" * 20] == [2, 0]
        assert server.request_counts[b"\x09" * 20] == [0, 1]
        assert server.total_requests == 3

    def test_unlogged_fetch_not_counted(self):
        server = HSDirServer(relay_id=1)
        server.store(make_stored(), now=0)
        server.fetch(b"\x01" * 20, now=1, log=False)
        assert server.total_requests == 0

    def test_detailed_log_kept_by_default(self):
        server = HSDirServer(relay_id=1)
        server.fetch(b"\x01" * 20, now=5)
        assert len(server.request_log) == 1
        record = server.request_log[0]
        assert record.time == 5
        assert not record.found

    def test_keep_log_false_skips_detail(self):
        server = HSDirServer(relay_id=1, keep_log=False)
        server.fetch(b"\x01" * 20, now=5)
        assert server.request_log == []
        assert server.total_requests == 1

    def test_requests_between(self):
        server = HSDirServer(relay_id=1)
        for t in (10, 20, 30):
            server.fetch(b"\x01" * 20, now=t)
        assert len(server.requests_between(15, 30)) == 1

    def test_clear_log(self):
        server = HSDirServer(relay_id=1)
        server.fetch(b"\x01" * 20, now=1)
        server.clear_log()
        assert server.total_requests == 0
        assert server.request_log == []
