"""Tests for repro.tornet — the network facade."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.errors import SimulationError
from repro.hs.service import HiddenService
from repro.relay.relay import Relay
from repro.sim.clock import DAY, HOUR, parse_date
from repro.sim.rng import derive_rng
from repro.tornet import TorNetwork

FEB4 = parse_date("2013-02-04")


def make_service(seed=5):
    return HiddenService(keypair=KeyPair.generate(random.Random(seed)), online_from=0)


class TestConsensusLifecycle:
    def test_consensus_before_build_raises(self):
        with pytest.raises(SimulationError):
            TorNetwork().consensus

    def test_rebuild_advances_clock(self, network):
        t0 = network.clock.now
        network.clock.advance_by(HOUR)
        consensus = network.rebuild_consensus()
        assert consensus.valid_after == t0 + HOUR

    def test_run_hours(self, network):
        t0 = network.clock.now
        network.run_hours(3)
        assert network.clock.now == t0 + 3 * HOUR

    def test_relay_for_fingerprint(self, network):
        entry = network.consensus.entries[0]
        relay = network.relay_for_fingerprint(entry.fingerprint)
        assert relay is not None
        assert relay.fingerprint == entry.fingerprint

    def test_hsdir_server_for_unknown_relay_raises(self, network):
        stranger = Relay(
            nickname="x",
            ip=1,
            or_port=1,
            keypair=KeyPair.generate(random.Random(123)),
            bandwidth=1,
            started_at=0,
        )
        with pytest.raises(SimulationError):
            network.hsdir_server_for(stranger)


class TestPublishFetch:
    def test_publish_reaches_six_directories(self, network):
        service = make_service()
        assert network.publish_service(service) == 6

    def test_offline_service_not_published(self, network):
        service = make_service()
        service.online_until = 1  # dead long ago
        assert network.publish_service(service) == 0

    def test_fetch_returns_published_descriptor(self, network):
        service = make_service()
        network.publish_service(service)
        rng = derive_rng(1, "fetch")
        stored = network.fetch_onion(service.onion, rng)
        assert stored is not None
        assert stored.public_der == service.keypair.public_der

    def test_fetch_unpublished_returns_none(self, network):
        rng = derive_rng(1, "fetch")
        assert network.fetch_onion(make_service(99).onion, rng) is None

    def test_descriptor_expires_across_periods(self, network):
        service = make_service()
        network.publish_service(service)
        network.clock.advance_by(DAY + HOUR)
        network.rebuild_consensus()
        rng = derive_rng(1, "fetch")
        assert network.fetch_onion(service.onion, rng) is None
        assert not network.descriptor_available(service.onion, network.clock.now)

    def test_republish_restores_availability(self, network):
        service = make_service()
        network.publish_service(service)
        network.clock.advance_by(DAY + HOUR)
        network.rebuild_consensus()
        network.publish_service(service)
        assert network.descriptor_available(service.onion, network.clock.now)

    def test_responsible_set_has_six_members(self, network):
        service = make_service()
        assert len(network.responsible_set(service.onion)) == 6

    def test_fetch_requests_are_logged_at_directories(self, network):
        service = make_service()
        network.publish_service(service)
        rng = derive_rng(2, "fetch")
        network.fetch_onion(service.onion, rng)
        total = sum(
            server.total_requests for server in network._hsdir_servers.values()
        )
        assert total >= 1

    def test_availability_probe_not_logged(self, network):
        service = make_service()
        network.publish_service(service)
        network.descriptor_available(service.onion, network.clock.now)
        total = sum(
            server.total_requests for server in network._hsdir_servers.values()
        )
        assert total == 0


class TestFetchObservers:
    def test_observer_sees_traces(self, network):
        service = make_service()
        network.publish_service(service)
        traces = []
        network.add_fetch_observer(traces.append)
        rng = derive_rng(3, "fetch")
        network.fetch_descriptor_id(
            service.current_descriptors(network.clock.now)[0].descriptor_id,
            rng,
            client_ip=42,
        )
        assert traces
        assert traces[0].client_ip == 42
        assert traces[0].found

    def test_phantom_fetch_probes_all_three(self, network):
        traces = []
        network.add_fetch_observer(traces.append)
        rng = derive_rng(4, "fetch")
        network.fetch_descriptor_id(b"\x13" * 20, rng)
        assert len(traces) == 3
        assert all(not trace.found for trace in traces)
