"""Smoke test for the chaos sweep: degrade gracefully, recover by retrying."""

from repro.experiments.chaos_sweep import chaos_plan, run_chaos_sweep


class TestChaosSweep:
    def test_sweep_shape_and_recovery(self):
        result = run_chaos_sweep(
            seed=3, scale=0.01, fault_rates=(0.0, 0.2), scan_days=2
        )
        assert [point.rate for point in result.points] == [0.0, 0.2]
        baseline, faulted = result.points

        # Zero faults: retries change nothing, and nothing is recovered.
        assert baseline.open_no_retry == baseline.open_retry
        assert baseline.transient_recovered == 0

        # Heavy faults: the headline count degrades without retries and
        # retries claw some of it back.
        assert faulted.open_no_retry < baseline.open_no_retry
        assert faulted.open_retry > faulted.open_no_retry
        assert faulted.classified_retry >= faulted.classified_no_retry
        assert faulted.transient_recovered > 0

        text = result.report.format()
        assert "chaos" in text
        table = result.format_table()
        assert "20%" in table

    def test_sweep_is_deterministic(self):
        runs = [
            run_chaos_sweep(seed=3, scale=0.01, fault_rates=(0.1,), scan_days=2)
            for _ in range(2)
        ]
        assert runs[0].points == runs[1].points

    def test_chaos_plan_is_named_and_active(self):
        plan = chaos_plan(0.1, seed=4)
        assert plan.active
        assert plan.name == "chaos-0.1"
        assert not chaos_plan(0.0).active
