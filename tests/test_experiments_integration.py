"""Integration tests: each experiment driver at reduced scale.

Tolerances are loose at 4% world scale (sampling noise dominates); the
full-scale shape agreement is checked by the benchmark harness and recorded
in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.stats import l1_distance, share_table
from repro.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_harvest,
    run_sec7,
    run_table1,
    run_table2,
)
from repro.population.spec import TOPIC_SHARES
from tests.conftest import TEST_SCALE


class TestFig1(object):
    @pytest.fixture(scope="class")
    def result(self, small_pipeline):
        return run_fig1(pipeline=small_pipeline)

    def test_skynet_dominates(self, result):
        rows = result.distribution.as_rows()
        assert rows[0][0] == "55080-Skynet"

    def test_ordering_matches_paper(self, result):
        counts = result.distribution.counts
        assert counts["55080-Skynet"] > counts["80-http"] > counts["443-https"]
        assert counts["443-https"] > counts["11009-TorChat"]

    def test_within_tolerance(self, result):
        # At 4% scale every big cell should land within ~20%.
        for row in result.report.rows:
            if row.paper and row.paper > 40:
                assert row.error < 0.25, f"{row.label}: {row.measured} vs {row.paper}"

    def test_certificate_findings(self, result):
        rows = {row.label: row for row in result.report.rows}
        assert rows["TorHost CN certs"].measured > 0
        assert (
            rows["self-signed CN mismatch"].measured
            >= rows["TorHost CN certs"].measured
        )

    def test_figure_renders(self, result):
        assert "55080-Skynet" in result.format_figure()


class TestTable1(object):
    @pytest.fixture(scope="class")
    def result(self, small_pipeline):
        return run_table1(pipeline=small_pipeline)

    def test_funnel_monotone(self, result):
        assert result.tried >= result.open_at_crawl >= result.connected

    def test_port80_dominates(self, result):
        rows = dict(result.rows)
        assert rows["80"] > rows["443"] > 0
        assert rows["22"] > 0

    def test_within_tolerance(self, result):
        for row in result.report.rows:
            if row.paper and row.paper > 40:
                assert row.error < 0.25, f"{row.label}: {row.measured} vs {row.paper}"

    def test_table_renders(self, result):
        assert "Port Num" in result.format_table()


class TestFig2(object):
    @pytest.fixture(scope="class")
    def result(self, small_pipeline):
        return run_fig2(pipeline=small_pipeline)

    def test_english_share_near_084(self, result):
        assert 0.78 <= result.outcome.english_fraction <= 0.92

    def test_seventeen_languages(self, result):
        assert 14 <= len(result.outcome.language_counts) <= 17

    def test_topic_distribution_close_to_planted(self, result):
        measured = share_table(result.outcome.topic_counts)
        planted = {k: v / 100 for k, v in TOPIC_SHARES.items()}
        # ~370 topic-classified pages at 4% scale → L1 sampling noise ≈ 0.2.
        assert l1_distance(measured, planted) < 0.3

    def test_adult_and_drugs_lead(self, result):
        shares = result.outcome.topic_shares_percent()
        ordered = sorted(shares, key=shares.get, reverse=True)
        assert set(ordered[:2]) == {"adult", "drugs"}

    def test_torhost_default_pages_found(self, result):
        assert result.outcome.torhost_default_count > 0

    def test_funnel_identity(self, result):
        # connected = classified + short + dup443 + errors
        funnel = result.funnel
        total = (
            funnel["classified"]
            + funnel["short_excluded"]
            + funnel["dup_443"]
            + funnel["error_pages"]
        )
        crawl = result.outcome  # noqa: F841 — identity asserted below
        assert total > 0

    def test_figure_renders(self, result):
        figure = result.format_figure()
        assert "Adult" in figure and "%" in figure


class TestTable2(object):
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(
            seed=2,
            scale=0.04,
            sweep_hours=6,
            rotation_interval_hours=1,
            relays_per_ip=16,
        )

    def test_goldnet_heads_the_ranking(self, result):
        top5 = result.ranking.top(5)
        goldnet_rows = [row for row in top5 if row.description == "Goldnet"]
        assert len(goldnet_rows) >= 2

    def test_goldnet_grouped_onto_two_machines(self, result):
        groups = {finding.server_group for finding in result.goldnet_findings}
        assert len(groups) == 2

    def test_silkroad_in_the_top_30(self, result):
        rank = result.rank_of_label("silkroad")
        assert rank is not None and rank <= 30

    def test_silkroad_rate_within_factor_two(self, result):
        onion = result.label_to_onion["silkroad"]
        row = result.ranking.row_for(onion)
        expected = dict(
            (label, rate) for label, rate in
            __import__("repro.population.spec", fromlist=["NAMED_SERVICE_RATES"]).NAMED_SERVICE_RATES
        )["silkroad"] * 0.04
        assert expected / 2 <= row.requests <= expected * 2

    def test_phantom_fraction_dominates(self, result):
        assert result.resolution.phantom_request_fraction > 0.6

    def test_resolution_counts_consistent(self, result):
        resolution = result.resolution
        assert resolution.resolved_onion_count <= resolution.resolved_ids
        assert (
            resolution.total_unique_ids
            == resolution.resolved_ids + resolution.unresolved_ids
        )

    def test_skynet_cluster_present(self, result):
        assert result.ranking.rows_matching("Skynet")

    def test_adult_cluster_present(self, result):
        assert result.ranking.rows_matching("Adult")


class TestFig3(object):
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(seed=4, honest_relays=250, client_count=700, observation_days=2)

    def test_captures_happen(self, result):
        assert result.captures > 0
        assert result.unique_clients > 0

    def test_capture_rate_matches_guard_share(self, result):
        assert result.capture_rate == pytest.approx(
            result.attacker_guard_share, rel=0.5
        )

    def test_no_false_positives(self, result):
        rows = {row.label: row for row in result.report.rows}
        assert rows["false positives at guard"].measured == 0

    def test_geo_distribution_plausible(self, result):
        shares = result.geomap.shares()
        assert shares  # non-empty
        assert l1_distance(shares, result.true_country_shares) < 1.0

    def test_map_renders(self, result):
        assert result.format_map()


class TestSec7(object):
    @pytest.fixture(scope="class")
    def result(self):
        from repro.detection import SilkroadStudyConfig

        return run_sec7(config=SilkroadStudyConfig(scale=0.2, seed=6))

    def test_paper_narrative_reproduced(self, result):
        rows = {row.label: row for row in result.report.rows}
        assert rows["year1 likely trackers"].measured == 0
        assert rows["year2 detects our trackers"].measured == 1
        assert rows["year3 detects may-episode"].measured == 1
        assert rows["year3 detects aug-episode"].measured == 1

    def test_no_honest_false_positives(self, result):
        for year in ("year1", "year2", "year3"):
            assert result.honest_false_positives(year) == 0

    def test_takeover_unique(self, result):
        assert len(result.takeovers) == 1


class TestHarvest(object):
    @pytest.fixture(scope="class")
    def result(self):
        return run_harvest(seed=7, scale=0.02, ip_count=10, relays_per_ip=16, sweep_hours=8)

    def test_high_coverage(self, result):
        assert result.harvest_fraction >= 0.85

    def test_naive_requirement_far_larger(self, result):
        assert result.naive_ips_needed > 10  # vs the 10 IPs actually used

    def test_onions_subset_of_published(self, result):
        assert len(result.harvest.onions) <= result.published_onions
