"""Tests for repro.faults: plans, the injecting transport, retry, profiles.

The fault plane's contract is the repo's contract: every injected fault is
a pure function of ``(seed, rule kind, onion, port, attempt)``, so a faulted
run replays byte-identically at any worker count.  These tests pin the
decision functions, the transport wrapper's bookkeeping, the retry
semantics (which outcomes retry, which are final), and the profile switch.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FaultConfigError, RetryExhaustedError
from repro.faults import (
    CircuitTimeoutFault,
    DescriptorFlapFault,
    FailureCategory,
    FailureTaxonomy,
    FaultInjectingTransport,
    FaultPlan,
    HSDirOutageFault,
    RetryPolicy,
    SlowCircuitFault,
    TruncationFault,
    build_fault_plan,
    connect_with_retry,
    default_retry_policy,
    fault_profile_names,
    fetch_descriptor_with_retry,
    resolve_fault_profile,
    wrap_transport,
)
from repro.net.endpoint import ConnectOutcome, ConnectResult

ONION = "abcdefghijklmnop.onion"


def _result(outcome, port=80, **kwargs):
    return ConnectResult(outcome=outcome, port=port, **kwargs)


class ScriptedTransport:
    """Returns a fixed sequence of ConnectResults; records every call."""

    def __init__(self, script, descriptor=True):
        self.script = list(script)
        self.descriptor = descriptor
        self.attempts = 0
        self.connects = []
        self.fetches = 0

    def connect(self, onion, port, now):
        self.attempts += 1
        self.connects.append((onion, port, now))
        return self.script.pop(0)

    def has_descriptor(self, onion, now):
        self.fetches += 1
        if isinstance(self.descriptor, list):
            return self.descriptor.pop(0)
        return self.descriptor

    def scan_ports(self, onion, ports, now):
        return {
            result.port: result
            for result in (self.connect(onion, port, now) for port in sorted(ports))
        }


class TestRuleValidation:
    def test_rates_bounded(self):
        with pytest.raises(FaultConfigError):
            CircuitTimeoutFault(rate=1.5)
        with pytest.raises(FaultConfigError):
            DescriptorFlapFault(rate=-0.1)
        with pytest.raises(FaultConfigError):
            TruncationFault(rate=2.0)

    def test_burst_length_bounded_by_period(self):
        with pytest.raises(FaultConfigError):
            CircuitTimeoutFault(rate=0.1, burst_period=100, burst_length=101)

    def test_outage_duration_bounded_by_period(self):
        with pytest.raises(FaultConfigError):
            HSDirOutageFault(affected_fraction=0.1, period=3600, duration=3601)

    def test_slow_circuit_needs_positive_latency(self):
        with pytest.raises(FaultConfigError):
            SlowCircuitFault(rate=0.1, extra_latency=0)

    def test_plan_rejects_non_rules(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(seed=0, rules=("not a rule",))


class TestBurstWindows:
    def test_rate_switches_inside_the_window(self):
        rule = CircuitTimeoutFault(
            rate=0.05, burst_rate=0.9, burst_period=100, burst_length=10
        )
        assert rule.rate_at(0) == 0.9
        assert rule.rate_at(9) == 0.9
        assert rule.rate_at(10) == 0.05
        assert rule.rate_at(99) == 0.05
        assert rule.rate_at(105) == 0.9  # next period's window

    def test_zero_length_burst_never_fires(self):
        rule = CircuitTimeoutFault(rate=0.05, burst_rate=0.9, burst_length=0)
        assert rule.rate_at(0) == 0.05


class TestHSDirOutageWindows:
    RULE = HSDirOutageFault(affected_fraction=1.0, period=1000, duration=100)

    def test_window_index(self):
        assert self.RULE.window_of(50) == 0
        assert self.RULE.window_of(500) == -1
        assert self.RULE.window_of(1050) == 1

    def test_whole_window_is_out_for_the_affected_onion(self):
        plan = FaultPlan(seed=3, rules=(self.RULE,))
        # affected_fraction=1.0: every onion is out, on every attempt,
        # for the full duration of the window.
        for attempt in (1, 2, 5):
            assert plan.descriptor_unavailable(ONION, attempt, 10)
            assert plan.descriptor_unavailable(ONION, attempt, 90)
        assert not plan.descriptor_unavailable(ONION, 1, 500)

    def test_affected_set_redraws_per_window(self):
        rule = HSDirOutageFault(affected_fraction=0.5, period=1000, duration=100)
        plan = FaultPlan(seed=3, rules=(rule,))
        onions = [f"onion{i:016d}.onion" for i in range(200)]
        first = {o for o in onions if plan.descriptor_unavailable(o, 1, 10)}
        second = {o for o in onions if plan.descriptor_unavailable(o, 1, 1010)}
        assert 0 < len(first) < len(onions)
        assert first != second


class TestFaultPlanDeterminism:
    def test_decisions_are_pure_functions_of_identity(self):
        rules = (
            CircuitTimeoutFault(rate=0.5),
            TruncationFault(rate=0.5),
            SlowCircuitFault(rate=0.5, extra_latency=30),
        )
        a = FaultPlan(seed=7, rules=rules)
        b = FaultPlan(seed=7, rules=rules)
        for port in (22, 80, 443):
            for attempt in (1, 2, 3):
                args = (ONION, port, attempt, 0)
                assert a.circuit_timeout(*args) == b.circuit_timeout(*args)
                assert a.truncates(*args) == b.truncates(*args)
                assert a.extra_latency(*args) == b.extra_latency(*args)

    def test_seed_changes_the_draws(self):
        rules = (CircuitTimeoutFault(rate=0.5),)
        a = FaultPlan(seed=7, rules=rules)
        b = FaultPlan(seed=8, rules=rules)
        onions = [f"onion{i:016d}.onion" for i in range(100)]
        hits_a = {o for o in onions if a.circuit_timeout(o, 80, 1, 0)}
        hits_b = {o for o in onions if b.circuit_timeout(o, 80, 1, 0)}
        assert hits_a != hits_b

    def test_attempt_changes_the_draw(self):
        # A retry is a fresh draw, not a replay of the failed one.
        plan = FaultPlan(seed=7, rules=(CircuitTimeoutFault(rate=0.5),))
        onions = [f"onion{i:016d}.onion" for i in range(100)]
        first = {o for o in onions if plan.circuit_timeout(o, 80, 1, 0)}
        second = {o for o in onions if plan.circuit_timeout(o, 80, 2, 0)}
        assert first != second

    def test_inactive_plan(self):
        assert not FaultPlan(seed=0).active
        assert FaultPlan(seed=0, rules=(TruncationFault(rate=0.0),)).active


class TestFaultInjectingTransport:
    def test_wrap_transport_passes_through_inert_plans(self):
        inner = ScriptedTransport([])
        assert wrap_transport(inner, FaultPlan(seed=0)) is inner
        wrapped = wrap_transport(inner, build_fault_plan("light"))
        assert isinstance(wrapped, FaultInjectingTransport)
        assert wrapped.plan.name == "light"

    def test_certain_circuit_timeout_never_reaches_the_inner_transport(self):
        inner = ScriptedTransport([])
        transport = FaultInjectingTransport(
            inner, FaultPlan(seed=0, rules=(CircuitTimeoutFault(rate=1.0),))
        )
        result = transport.connect(ONION, 80, 0)
        assert result.outcome is ConnectOutcome.TIMEOUT
        assert "injected" in result.error_message
        assert inner.attempts == 0
        assert transport.injected == 1
        assert transport.attempts == 1  # inner attempts + injected

    def test_certain_flap_makes_the_service_unreachable(self):
        inner = ScriptedTransport([], descriptor=True)
        transport = FaultInjectingTransport(
            inner, FaultPlan(seed=0, rules=(DescriptorFlapFault(rate=1.0),))
        )
        assert not transport.has_descriptor(ONION, 0)
        assert inner.fetches == 0
        result = transport.connect(ONION, 80, 0)
        assert result.outcome is ConnectOutcome.UNREACHABLE
        assert transport.scan_ports(ONION, [80, 443], 0) == {}

    def test_truncation_halves_the_banner(self):
        inner = ScriptedTransport(
            [_result(ConnectOutcome.OPEN, banner="HTTP/1.0 200 OK")]
        )
        transport = FaultInjectingTransport(
            inner, FaultPlan(seed=0, rules=(TruncationFault(rate=1.0),))
        )
        result = transport.connect(ONION, 80, 0)
        assert result.outcome is ConnectOutcome.OPEN
        assert result.truncated
        assert result.banner == "HTTP/1.0 200 OK"[: len("HTTP/1.0 200 OK") // 2]
        assert "injected" in result.error_message
        assert not result.ok

    def test_truncation_spares_non_open_results(self):
        inner = ScriptedTransport([_result(ConnectOutcome.REFUSED)])
        transport = FaultInjectingTransport(
            inner, FaultPlan(seed=0, rules=(TruncationFault(rate=1.0),))
        )
        result = transport.connect(ONION, 80, 0)
        assert result.outcome is ConnectOutcome.REFUSED
        assert not result.truncated

    def test_slow_circuit_adds_latency(self):
        inner = ScriptedTransport([_result(ConnectOutcome.OPEN)])
        transport = FaultInjectingTransport(
            inner,
            FaultPlan(seed=0, rules=(SlowCircuitFault(rate=1.0, extra_latency=45),)),
        )
        assert transport.connect(ONION, 80, 0).latency == 45

    def test_scan_ports_injects_per_port(self):
        inner = ScriptedTransport(
            [_result(ConnectOutcome.OPEN, port=22), _result(ConnectOutcome.OPEN, port=80)]
        )
        transport = FaultInjectingTransport(
            inner, FaultPlan(seed=0, rules=(CircuitTimeoutFault(rate=1.0),))
        )
        results = transport.scan_ports(ONION, [80, 22], 0)
        assert set(results) == {22, 80}
        assert all(
            r.outcome is ConnectOutcome.TIMEOUT for r in results.values()
        )

    def test_attempt_counters_advance_per_endpoint(self):
        plan = FaultPlan(seed=0, rules=(TruncationFault(rate=0.0),))
        transport = FaultInjectingTransport(ScriptedTransport([]), plan)
        assert transport._next_probe(ONION, 80) == 1
        assert transport._next_probe(ONION, 80) == 2
        assert transport._next_probe(ONION, 443) == 1  # per-port counter


class TestProfiles:
    def test_known_names(self):
        assert fault_profile_names() == ("none", "light", "moderate", "heavy")

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "heavy")
        assert resolve_fault_profile("light") == "light"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "moderate")
        assert resolve_fault_profile() == "moderate"
        monkeypatch.delenv("REPRO_FAULTS")
        assert resolve_fault_profile() == "none"

    def test_names_are_normalised(self):
        assert resolve_fault_profile("  Moderate ") == "moderate"

    def test_unknown_profile_rejected(self):
        with pytest.raises(FaultConfigError):
            resolve_fault_profile("catastrophic")

    def test_plan_construction(self):
        assert not build_fault_plan("none").active
        plan = build_fault_plan("moderate", seed=5)
        assert plan.active
        assert plan.name == "moderate"
        assert plan.seed == 5

    def test_retry_budget_scales_with_severity(self):
        assert default_retry_policy("none") is None
        assert default_retry_policy("light").max_attempts == 2
        assert default_retry_policy("moderate").max_attempts == 3
        assert default_retry_policy("heavy").max_attempts == 4


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": 0},
            {"backoff_factor": 0.5},
            {"max_delay": 1, "base_delay": 2},
            {"jitter": 1.0},
            {"descriptor_refetches": -1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(FaultConfigError):
            RetryPolicy(**kwargs)

    def test_no_delay_precedes_the_first_attempt(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy().base_backoff(1)


class TestRetryPolicyProperties:
    @given(attempt=st.integers(min_value=2, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_base_backoff_monotone_and_capped(self, attempt):
        policy = RetryPolicy(base_delay=2, backoff_factor=2.0, max_delay=600)
        assert policy.base_backoff(attempt) <= policy.base_backoff(attempt + 1)
        assert policy.base_backoff(attempt) <= policy.max_delay

    @given(
        attempt=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
        port=st.integers(min_value=1, max_value=65535),
    )
    @settings(max_examples=100, deadline=None)
    def test_jitter_stays_within_the_band(self, attempt, seed, port):
        policy = RetryPolicy(seed=seed)
        base = policy.base_backoff(attempt)
        delay = policy.delay_before(attempt, ONION, port)
        assert base * (1 - policy.jitter) - 1 <= delay <= base * (1 + policy.jitter) + 1
        assert delay >= 1

    @given(
        attempt=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_jittered_delays_stay_monotone_below_the_cap(self, attempt, seed):
        # jitter=0.25 < (factor-1)/(factor+1): consecutive jitter bands
        # cannot overlap, so the schedule is increasing until the cap.
        policy = RetryPolicy(seed=seed)
        assert policy.base_backoff(attempt + 1) < policy.max_delay
        assert policy.delay_before(attempt, ONION, 80) <= policy.delay_before(
            attempt + 1, ONION, 80
        )

    @given(
        attempt=st.integers(min_value=2, max_value=12),
        port=st.integers(min_value=1, max_value=65535),
    )
    @settings(max_examples=50, deadline=None)
    def test_delay_is_deterministic_per_probe(self, attempt, port):
        a = RetryPolicy(seed=9)
        b = RetryPolicy(seed=9)
        assert a.delay_before(attempt, ONION, port) == b.delay_before(
            attempt, ONION, port
        )

    @given(max_attempts=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_attempts_never_exceed_the_bound(self, max_attempts):
        policy = RetryPolicy(max_attempts=max_attempts)
        transport = ScriptedTransport(
            [_result(ConnectOutcome.TIMEOUT)] * max_attempts
        )
        outcome = connect_with_retry(transport, ONION, 80, 0, policy)
        assert outcome.attempts == max_attempts
        assert outcome.category is FailureCategory.RETRIES_EXHAUSTED

    def test_retryable_outcomes(self):
        policy = RetryPolicy()
        assert policy.retryable(_result(ConnectOutcome.TIMEOUT))
        assert policy.retryable(_result(ConnectOutcome.OPEN, truncated=True))
        assert not policy.retryable(_result(ConnectOutcome.OPEN))
        assert not policy.retryable(_result(ConnectOutcome.REFUSED))
        assert not policy.retryable(_result(ConnectOutcome.UNREACHABLE))


class TestConnectWithRetry:
    POLICY = RetryPolicy(max_attempts=3, seed=1)

    def test_clean_success_has_no_category(self):
        transport = ScriptedTransport([_result(ConnectOutcome.OPEN)])
        outcome = connect_with_retry(transport, ONION, 80, 100, self.POLICY)
        assert outcome.attempts == 1
        assert outcome.category is None
        assert not outcome.recovered
        assert outcome.finished_at == 100

    def test_timeout_then_open_is_transient_recovered(self):
        transport = ScriptedTransport(
            [_result(ConnectOutcome.TIMEOUT), _result(ConnectOutcome.OPEN)]
        )
        outcome = connect_with_retry(transport, ONION, 80, 100, self.POLICY)
        assert outcome.attempts == 2
        assert outcome.recovered
        assert outcome.finished_at > 100  # the backoff advanced the clock

    def test_refused_is_immediately_permanent(self):
        transport = ScriptedTransport([_result(ConnectOutcome.REFUSED)])
        outcome = connect_with_retry(transport, ONION, 80, 0, self.POLICY)
        assert outcome.attempts == 1
        assert outcome.category is FailureCategory.PERMANENT
        assert transport.attempts == 1

    def test_unreachable_earns_one_descriptor_refetch(self):
        transport = ScriptedTransport(
            [_result(ConnectOutcome.UNREACHABLE), _result(ConnectOutcome.OPEN)],
            descriptor=True,
        )
        outcome = connect_with_retry(transport, ONION, 80, 0, self.POLICY)
        assert outcome.attempts == 2
        assert outcome.recovered
        assert transport.fetches == 1

    def test_unreachable_with_descriptor_gone_is_permanent_churn(self):
        transport = ScriptedTransport(
            [_result(ConnectOutcome.UNREACHABLE)], descriptor=False
        )
        outcome = connect_with_retry(transport, ONION, 80, 0, self.POLICY)
        assert outcome.attempts == 1
        assert outcome.category is FailureCategory.PERMANENT
        assert transport.attempts == 1  # no second connect without a descriptor

    def test_refetch_budget_is_bounded(self):
        policy = RetryPolicy(max_attempts=5, descriptor_refetches=1, seed=1)
        transport = ScriptedTransport(
            [_result(ConnectOutcome.UNREACHABLE)] * 2, descriptor=True
        )
        outcome = connect_with_retry(transport, ONION, 80, 0, policy)
        assert outcome.attempts == 2
        assert outcome.category is FailureCategory.PERMANENT
        assert transport.fetches == 1

    def test_exhaustion_returns_the_last_result(self):
        transport = ScriptedTransport([_result(ConnectOutcome.TIMEOUT)] * 3)
        outcome = connect_with_retry(transport, ONION, 80, 0, self.POLICY)
        assert outcome.attempts == 3
        assert outcome.category is FailureCategory.RETRIES_EXHAUSTED
        assert outcome.result.outcome is ConnectOutcome.TIMEOUT

    def test_require_success_raises_on_exhaustion(self):
        transport = ScriptedTransport([_result(ConnectOutcome.TIMEOUT)] * 3)
        with pytest.raises(RetryExhaustedError) as excinfo:
            connect_with_retry(
                transport, ONION, 80, 0, self.POLICY, require_success=True
            )
        assert excinfo.value.attempts == 3
        assert excinfo.value.last_outcome == "timeout"

    def test_deadline_stops_the_schedule(self):
        transport = ScriptedTransport([_result(ConnectOutcome.TIMEOUT)] * 3)
        outcome = connect_with_retry(
            transport, ONION, 80, 100, self.POLICY, deadline=101
        )
        assert outcome.attempts == 1
        assert outcome.category is FailureCategory.RETRIES_EXHAUSTED
        assert transport.attempts == 1

    def test_initial_result_counts_as_attempt_one(self):
        transport = ScriptedTransport([_result(ConnectOutcome.OPEN)])
        outcome = connect_with_retry(
            transport,
            ONION,
            80,
            0,
            self.POLICY,
            initial=_result(ConnectOutcome.TIMEOUT),
        )
        assert outcome.attempts == 2
        assert outcome.recovered
        assert transport.attempts == 1  # only the retry probed the network

    def test_truncated_open_satisfies_a_syn_scan(self):
        truncated = _result(ConnectOutcome.OPEN, truncated=True)
        transport = ScriptedTransport([truncated])
        syn = connect_with_retry(
            transport, ONION, 80, 0, self.POLICY, require_conversation=False
        )
        assert syn.attempts == 1
        assert syn.category is None

    def test_truncated_open_retries_when_a_conversation_is_needed(self):
        transport = ScriptedTransport(
            [
                _result(ConnectOutcome.OPEN, truncated=True),
                _result(ConnectOutcome.OPEN, banner="full page"),
            ]
        )
        outcome = connect_with_retry(transport, ONION, 80, 0, self.POLICY)
        assert outcome.attempts == 2
        assert outcome.recovered
        assert outcome.result.ok

    def test_latency_advances_the_clock(self):
        transport = ScriptedTransport(
            [_result(ConnectOutcome.OPEN, latency=45)]
        )
        outcome = connect_with_retry(transport, ONION, 80, 100, self.POLICY)
        assert outcome.finished_at == 145

    def test_initial_result_latency_is_not_recharged(self):
        # The caller's ``when`` already includes the batched probe's latency;
        # charging it again here would double-count it in finished_at.
        transport = ScriptedTransport([])
        outcome = connect_with_retry(
            transport,
            ONION,
            80,
            100,
            self.POLICY,
            initial=_result(ConnectOutcome.OPEN, latency=45),
        )
        assert outcome.attempts == 1
        assert outcome.finished_at == 100
        assert transport.attempts == 0

    def test_initial_timeout_clock_advances_by_backoff_and_retry_only(self):
        transport = ScriptedTransport([_result(ConnectOutcome.OPEN, latency=45)])
        outcome = connect_with_retry(
            transport,
            ONION,
            80,
            100,
            self.POLICY,
            initial=_result(ConnectOutcome.TIMEOUT, latency=30),
        )
        delay = self.POLICY.delay_before(2, ONION, 80)
        # The initial result's 30s must not appear anywhere: the retry fires
        # at when + backoff and only the retry's own latency accrues.
        assert transport.connects == [(ONION, 80, 100 + delay)]
        assert outcome.finished_at == 100 + delay + 45

    def test_same_inputs_replay_identically(self):
        script = [
            _result(ConnectOutcome.TIMEOUT),
            _result(ConnectOutcome.TIMEOUT),
            _result(ConnectOutcome.OPEN),
        ]
        first = connect_with_retry(
            ScriptedTransport(list(script)), ONION, 80, 0, self.POLICY
        )
        second = connect_with_retry(
            ScriptedTransport(list(script)), ONION, 80, 0, self.POLICY
        )
        assert first == second


class TestFetchDescriptorWithRetry:
    POLICY = RetryPolicy(descriptor_refetches=1, seed=1)

    def test_present_first_time(self):
        transport = ScriptedTransport([], descriptor=True)
        assert fetch_descriptor_with_retry(transport, ONION, 0, self.POLICY) == (True, 1)

    def test_flap_recovered_by_refetch(self):
        transport = ScriptedTransport([], descriptor=[False, True])
        assert fetch_descriptor_with_retry(transport, ONION, 0, self.POLICY) == (True, 2)

    def test_permanent_churn_exhausts_the_budget(self):
        transport = ScriptedTransport([], descriptor=False)
        found, attempts = fetch_descriptor_with_retry(transport, ONION, 0, self.POLICY)
        assert not found
        assert attempts == 1 + self.POLICY.descriptor_refetches

    def test_refetch_jitter_uses_the_descriptor_stream(self):
        # Descriptor re-fetches must not draw jitter from the port-0 stream:
        # a genuine port-0 probe retry on the same onion would share (and
        # therefore correlate with) the re-fetch schedule.
        from repro.faults.retry import DESCRIPTOR_STREAM

        class FetchTimeTransport(ScriptedTransport):
            def __init__(self, descriptor):
                super().__init__([], descriptor=descriptor)
                self.fetch_times = []

            def has_descriptor(self, onion, now):
                self.fetch_times.append(now)
                return super().has_descriptor(onion, now)

        transport = FetchTimeTransport(descriptor=[False, True])
        found, attempts = fetch_descriptor_with_retry(
            transport, ONION, 100, self.POLICY
        )
        assert (found, attempts) == (True, 2)
        expected = 100 + self.POLICY.delay_before(2, ONION, DESCRIPTOR_STREAM)
        assert transport.fetch_times == [100, expected]
        # And the label really is a distinct stream from port 0.  The
        # default base_delay is small enough that whole-second rounding can
        # mask the jitter, so compare with delays wide enough to show it.
        wide = RetryPolicy(seed=1, base_delay=10_000, max_delay=100_000)
        descriptor_delays = [
            wide.delay_before(n, ONION, DESCRIPTOR_STREAM) for n in (2, 3, 4)
        ]
        port_zero_delays = [wide.delay_before(n, ONION, 0) for n in (2, 3, 4)]
        assert descriptor_delays != port_zero_delays


class TestFailureTaxonomy:
    def test_record_and_totals(self):
        taxonomy = FailureTaxonomy()
        taxonomy.record(FailureCategory.TRANSIENT_RECOVERED, attempts=3)
        taxonomy.record(FailureCategory.RETRIES_EXHAUSTED, attempts=3)
        taxonomy.record(FailureCategory.PERMANENT)
        taxonomy.record(None)  # clean first-attempt success: not a failure
        assert taxonomy.total == 3
        assert taxonomy.unrecovered == 2
        assert taxonomy.retry_attempts == 4

    def test_merge(self):
        a = FailureTaxonomy(transient_recovered=1, permanent=2, retry_attempts=1)
        b = FailureTaxonomy(retries_exhausted=3, retry_attempts=2)
        a.merge(b)
        assert a.transient_recovered == 1
        assert a.retries_exhausted == 3
        assert a.permanent == 2
        assert a.retry_attempts == 3

    def test_rows_are_stable(self):
        taxonomy = FailureTaxonomy(
            transient_recovered=5, retries_exhausted=2, permanent=1
        )
        assert list(taxonomy.rows()) == [
            ("transient recovered", 5),
            ("retries exhausted", 2),
            ("permanent failures", 1),
        ]
