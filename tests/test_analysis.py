"""Tests for repro.analysis — stats, reports, table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.report import ComparisonRow, ExperimentReport
from repro.analysis.stats import (
    head_counts,
    l1_distance,
    pearson_rank_correlation,
    relative_error,
    share_table,
)
from repro.analysis.tables import format_bar_chart, format_rows


class TestStats:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_relative_error_zero_expected(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_l1_distance(self):
        assert l1_distance({"a": 0.6, "b": 0.4}, {"a": 0.5, "b": 0.5}) == pytest.approx(0.2)

    def test_l1_missing_keys(self):
        assert l1_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(2.0)

    def test_share_table(self):
        shares = share_table({"x": 3, "y": 1})
        assert shares == {"x": 0.75, "y": 0.25}

    def test_share_table_empty(self):
        assert share_table({"x": 0}) == {"x": 0.0}

    def test_rank_correlation_identical(self):
        assert pearson_rank_correlation(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_rank_correlation_reversed(self):
        assert pearson_rank_correlation(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_rank_correlation_ignores_missing(self):
        assert pearson_rank_correlation(["a", "b", "zz"], ["a", "b"]) == 1.0

    def test_rank_correlation_tiny_overlap(self):
        assert pearson_rank_correlation(["a"], ["a"]) == 1.0

    def test_head_counts(self):
        rows = [("a", 1), ("b", 5), ("c", 3)]
        assert head_counts(rows, 2) == [("b", 5), ("c", 3)]

    @given(
        st.dictionaries(st.sampled_from("abcdef"), st.floats(0, 1), max_size=6),
        st.dictionaries(st.sampled_from("abcdef"), st.floats(0, 1), max_size=6),
    )
    def test_l1_symmetry(self, left, right):
        assert l1_distance(left, right) == pytest.approx(l1_distance(right, left))


class TestExperimentReport:
    def test_rows_and_errors(self):
        report = ExperimentReport(experiment="x")
        report.add("count", 100, 110)
        report.add("unpapered", None, 5)
        assert report.rows[0].error == pytest.approx(0.1)
        assert report.rows[1].error is None
        assert report.max_error() == pytest.approx(0.1)

    def test_format_contains_everything(self):
        report = ExperimentReport(experiment="fig-x")
        report.add("quantity", 10, 12)
        report.note("hello note")
        text = report.format()
        assert "fig-x" in text
        assert "quantity" in text
        assert "20.0%" in text
        assert "hello note" in text

    def test_comparison_row_frozen(self):
        row = ComparisonRow(label="a", paper=1, measured=2)
        with pytest.raises(AttributeError):
            row.measured = 3  # type: ignore[misc]


class TestTables:
    def test_format_rows_alignment(self):
        text = format_rows([("a", 100), ("bbbb", 2)], headers=("k", "v"))
        lines = text.splitlines()
        assert lines[0].startswith("k")
        assert len(lines) == 3

    def test_bar_chart_peak_width(self):
        text = format_bar_chart([("big", 10.0), ("small", 1.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 1

    def test_bar_chart_empty(self):
        assert format_bar_chart([]) == "(empty)"

    def test_bar_chart_zero_value(self):
        text = format_bar_chart([("z", 0.0)])
        assert "z" in text
