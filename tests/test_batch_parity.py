"""Scalar ≡ batch parity for the end-to-end batch routing.

Every batch API the experiment wiring now calls must match the scalar
oracle it replaced — byte-for-byte for descriptor IDs and placements,
bit-for-bit for floats — on the happy path, on the degenerate shapes the
sweeps actually hit (empty onion sets, rings smaller than the replica
fan-out, zero-length windows) and on the numpy-absent fallback path.
When these disagree, the bug is in the batch kernel: the scalar oracle
is the specification and is never adjusted to make a test pass.
"""

import bisect
import random
from unittest import mock

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ring as ring_module
from repro.crypto.descriptor_id import (
    REPLICAS,
    descriptor_ids_for_day,
    descriptor_ids_for_day_batch,
    descriptor_index_entries,
    descriptor_index_entries_batch,
)
from repro.crypto.onion import onion_address_from_key
from repro.crypto.ring import (
    HSDIRS_PER_REPLICA,
    responsible_positions,
    responsible_positions_batch,
    ring_start_indices,
)
from repro.errors import AttackError
from repro.hsdir.ring_view import (
    responsible_for_replica,
    responsible_hsdirs,
    responsible_hsdirs_batch,
    responsible_replica_lists_batch,
)
from repro.scan.schedule import ScanSchedule
from repro.sim.clock import DAY, HOUR, parse_date
from repro.trawl import harvest as harvest_module
from repro.trawl.harvest import RingHistory
from tests.conftest import make_network

BASE = parse_date("2013-02-04")

_POINT = st.integers(min_value=0, max_value=2**160 - 1)


def _onions(keys):
    return [onion_address_from_key(key) for key in keys]


class TestDescriptorBatchParity:
    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(st.binary(min_size=8, max_size=40), max_size=10),
        day_offset=st.integers(min_value=-3, max_value=3),
        second=st.integers(min_value=0, max_value=DAY - 1),
    )
    def test_day_batch_matches_scalar(self, keys, day_offset, second):
        onions = _onions(keys)
        now = BASE + day_offset * DAY + second
        assert descriptor_ids_for_day_batch(onions, now) == [
            descriptor_ids_for_day(onion, now) for onion in onions
        ]

    def test_empty_onion_set(self):
        assert descriptor_ids_for_day_batch([], BASE) == []
        assert descriptor_index_entries_batch([], BASE, BASE + DAY) == []

    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(st.binary(min_size=8, max_size=40), max_size=8),
        second=st.integers(min_value=0, max_value=2 * DAY),
    )
    def test_zero_length_window(self, keys, second):
        onions = _onions(keys)
        when = BASE + second
        assert descriptor_index_entries_batch(onions, when, when) == [
            descriptor_index_entries(onion, when, when) for onion in onions
        ]


@st.composite
def ring_cases(draw):
    """A sorted ring plus queries biased toward ties and prefix collisions."""
    points = sorted(set(draw(st.lists(_POINT, max_size=24))))
    queries = []
    for _ in range(draw(st.integers(min_value=0, max_value=24))):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0 and points:
            # Exact tie: bisect_right must step past every equal point.
            queries.append(draw(st.sampled_from(points)))
        elif choice == 1 and points:
            # Same uint64 prefix, different low bits: forces the exact
            # refinement pass rather than the searchsorted shortcut.
            base = draw(st.sampled_from(points))
            queries.append(base ^ draw(st.integers(0, 2**96 - 1)))
        else:
            queries.append(draw(_POINT))
    return points, queries


class TestRingStartIndices:
    @settings(max_examples=80, deadline=None)
    @given(case=ring_cases())
    def test_matches_bisect(self, case):
        points, queries = case
        expected = [bisect.bisect_right(points, query) for query in queries]
        assert ring_start_indices(queries, points) == expected

    @settings(max_examples=25, deadline=None)
    @given(case=ring_cases())
    def test_matches_bisect_without_numpy(self, case):
        points, queries = case
        expected = [bisect.bisect_right(points, query) for query in queries]
        with mock.patch.object(ring_module, "_np", None):
            assert ring_start_indices(queries, points) == expected

    def test_positions_batch_without_numpy(self):
        rng = random.Random(7)
        points = sorted({rng.getrandbits(160) for _ in range(40)})
        queries = [rng.getrandbits(160) for _ in range(60)] + points[:5]
        expected = [responsible_positions(query, points) for query in queries]
        with mock.patch.object(ring_module, "_np", None):
            assert responsible_positions_batch(queries, points) == expected


class TestSmallRingDuplicates:
    """Rings smaller than REPLICAS * count wrap and repeat directories."""

    @pytest.fixture(scope="class")
    def tiny_network(self):
        net, _pool = make_network(seed=33, relay_count=5)
        return net

    def test_ring_really_is_smaller_than_fanout(self, tiny_network):
        assert 0 < tiny_network.consensus.hsdir_count < REPLICAS * HSDIRS_PER_REPLICA

    def test_batch_matches_scalar_on_tiny_ring(self, tiny_network):
        onions = _onions(bytes([value]) * 9 for value in range(12))
        now = parse_date("2013-01-02")
        consensus = tiny_network.consensus
        assert responsible_hsdirs_batch(consensus, onions, now) == [
            responsible_hsdirs(consensus, onion, now) for onion in onions
        ]
        per_replica = responsible_replica_lists_batch(consensus, onions, now)
        for onion, lists in zip(onions, per_replica):
            assert lists == [
                responsible_for_replica(consensus, onion, now, replica)
                for replica in range(REPLICAS)
            ]

    def test_empty_onions_on_tiny_ring(self, tiny_network):
        assert responsible_hsdirs_batch(tiny_network.consensus, [], BASE) == []


class TestNetworkBatchPlacement:
    """The TorNetwork batch APIs the publisher rides must equal the scalar
    per-onion lookups on a realistically sized ring."""

    def test_responsible_sets_batch_matches_scalar(self, network):
        onions = _onions(bytes([value + 1]) * 11 for value in range(10))
        now = network.clock.now
        assert network.responsible_sets_batch(onions, now) == [
            frozenset(responsible_hsdirs(network.consensus, onion, now))
            for onion in onions
        ]

    def test_replica_lists_batch_matches_scalar(self, network):
        onions = _onions(bytes([value + 1]) * 11 for value in range(10))
        now = network.clock.now
        per_replica = network.responsible_replica_lists_batch(onions, now)
        for onion, lists in zip(onions, per_replica):
            assert lists == [
                responsible_for_replica(network.consensus, onion, now, replica)
                for replica in range(REPLICAS)
            ]


@st.composite
def histories_and_requests(draw):
    """A RingHistory (varying rings, possibly empty) plus rate requests."""
    history = RingHistory()
    snapshots = draw(st.integers(min_value=0, max_value=5))
    for index in range(snapshots):
        members = draw(st.integers(min_value=0, max_value=10))
        points = sorted(
            set(draw(st.lists(_POINT, min_size=members, max_size=members)))
        )
        attacker = (
            set(draw(st.lists(st.sampled_from(points), max_size=len(points))))
            if points
            else set()
        )
        history.record(BASE + (index + 1) * HOUR, points, attacker)
    requests = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        desc_id = draw(st.binary(min_size=20, max_size=20))
        found = draw(st.integers(min_value=0, max_value=6))
        missing = draw(st.integers(min_value=0, max_value=6))
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            validity = None
        elif kind == 1:
            # Zero-length window: no snapshot can overlap it, which must
            # drive the full-sweep fallback identically on both paths.
            when = BASE + draw(st.integers(0, snapshots + 1)) * HOUR
            validity = (when, when)
        else:
            start = BASE + draw(st.integers(-2, max(0, snapshots))) * HOUR
            validity = (start, start + draw(st.integers(1, 3 * HOUR)))
        requests.append((desc_id, found, missing, validity))
    return history, requests


class TestNormalizedRatesBatch:
    @settings(max_examples=80, deadline=None)
    @given(case=histories_and_requests())
    def test_matches_scalar_bit_for_bit(self, case):
        history, requests = case
        expected = [
            history.normalized_rate(desc_id, found, missing, validity=validity)
            for desc_id, found, missing, validity in requests
        ]
        assert history.normalized_rates_batch(requests) == expected

    @settings(max_examples=25, deadline=None)
    @given(case=histories_and_requests())
    def test_matches_scalar_without_numpy(self, case):
        history, requests = case
        expected = [
            history.normalized_rate(desc_id, found, missing, validity=validity)
            for desc_id, found, missing, validity in requests
        ]
        with mock.patch.object(harvest_module, "_np", None):
            assert history.normalized_rates_batch(requests) == expected

    def test_empty_requests(self):
        assert RingHistory().normalized_rates_batch([]) == []


class TestBatchedStageCrashResume:
    """A death at the store commit of the batched harvest stage resumes to
    the same bytes a never-crashed run produces — the batch routing did not
    move any work across the checkpoint boundary."""

    def test_harvest_checkpoint_resumes_byte_identical(self, tmp_path):
        from repro.experiments.harvest import run_harvest
        from repro.population import generate_population
        from repro.store import STORE_COMMIT_POINT, ArtifactStore

        population = generate_population(seed=5, scale=0.02)
        clean = run_harvest(seed=5, population=population).report.format()

        class Die(Exception):
            pass

        def die_at_commit(label):
            if label == STORE_COMMIT_POINT:
                raise Die(label)

        root = tmp_path / "store"
        store = ArtifactStore(root)
        store.crash_point = die_at_commit
        with pytest.raises(Die):
            run_harvest(seed=5, population=population, store=store)

        resumed_store = ArtifactStore(root)
        resumed = run_harvest(
            seed=5, population=population, store=resumed_store
        ).report.format()
        assert resumed == clean
        # The commit died before the index entry landed, so the resume is
        # a full recompute — through every batched stage — not a replay.
        events = [entry["event"] for entry in resumed_store.ledger.entries()]
        assert events == ["miss"]


class TestScheduleExpansion:
    @settings(max_examples=80, deadline=None)
    @given(
        days=st.integers(min_value=1, max_value=8),
        first=st.integers(min_value=1, max_value=100),
        span=st.integers(min_value=0, max_value=400),
        data=st.data(),
    )
    def test_day_of_port_matches_chunk_membership(self, days, first, span, data):
        schedule = ScanSchedule(
            start=BASE, days=days, first_port=first, last_port=first + span
        )
        port = data.draw(st.integers(min_value=first, max_value=first + span))
        owner = next(
            day
            for day, chunk in enumerate(schedule.all_ports())
            if port in chunk
        )
        assert schedule.day_of_port(port) == owner

    def test_day_of_port_rejects_out_of_range(self):
        schedule = ScanSchedule(start=BASE, days=3, first_port=10, last_port=20)
        with pytest.raises(AttackError):
            schedule.day_of_port(9)
        with pytest.raises(AttackError):
            schedule.day_of_port(21)

    @settings(max_examples=60, deadline=None)
    @given(
        days=st.integers(min_value=1, max_value=8),
        first=st.integers(min_value=1, max_value=60),
        span=st.integers(min_value=0, max_value=200),
        priority=st.lists(st.integers(min_value=1, max_value=300), max_size=6),
    )
    def test_expanded_campaign_matches_inline_filter(
        self, days, first, span, priority
    ):
        schedule = ScanSchedule(
            start=BASE, days=days, first_port=first, last_port=first + span
        )
        ordered = sorted(set(priority))
        expanded = schedule.expanded_campaign(priority)
        assert [row[:3] for row in expanded] == schedule.campaign()
        for _, _, chunk, extra in expanded:
            assert extra == [port for port in ordered if port not in chunk]
