"""Tests for repro.client.client."""

import random

from repro.client.client import TorClient
from repro.crypto.keys import KeyPair
from repro.hs.service import HiddenService
from repro.sim.clock import DAY
from repro.sim.rng import derive_rng


def make_service(seed=31):
    return HiddenService(keypair=KeyPair.generate(random.Random(seed)), online_from=0)


def make_client(seed=1, skew=0):
    return TorClient(ip=0x08080808, rng=derive_rng(seed, "c"), clock_skew=skew)


class TestFetch:
    def test_fetch_published_service(self, network):
        service = make_service()
        network.publish_service(service)
        client = make_client()
        client.refresh_guards(network)
        stored = client.fetch_onion(network, service.onion)
        assert stored is not None
        assert client.fetches_succeeded == 1

    def test_fetch_without_guards_still_works(self, network):
        service = make_service()
        network.publish_service(service)
        client = make_client()
        assert client.fetch_onion(network, service.onion) is not None

    def test_skewed_client_misses(self, network):
        """A client whose clock is a day off derives tomorrow's descriptor
        ID — the fetch fails even though the service is up (Section V's
        'wrong time settings of Tor clients')."""
        service = make_service()
        network.publish_service(service)
        skewed = make_client(seed=2, skew=DAY)
        assert skewed.fetch_onion(network, service.onion) is None
        assert skewed.fetches_succeeded == 0
        assert skewed.fetches_attempted == 1

    def test_skewed_requests_still_logged(self, network):
        service = make_service()
        network.publish_service(service)
        traces = []
        network.add_fetch_observer(traces.append)
        make_client(seed=3, skew=DAY).fetch_onion(network, service.onion)
        assert traces  # phantom requests land in directory logs
        assert all(not trace.found for trace in traces)

    def test_guard_fingerprint_attached_to_trace(self, network):
        service = make_service()
        network.publish_service(service)
        client = make_client(seed=4)
        client.refresh_guards(network)
        traces = []
        network.add_fetch_observer(traces.append)
        client.fetch_onion(network, service.onion)
        assert traces[0].guard_fingerprint in client.guards.fingerprints

    def test_local_time(self):
        assert make_client(skew=-60).local_time(1000) == 940

    def test_fetch_raw_descriptor_id(self, network):
        service = make_service()
        network.publish_service(service)
        desc_id = service.current_descriptors(network.clock.now)[0].descriptor_id
        client = make_client(seed=5)
        assert client.fetch_descriptor_id(network, desc_id) is not None

    def test_fetch_raw_phantom_id(self, network):
        client = make_client(seed=6)
        assert client.fetch_descriptor_id(network, b"\x77" * 20) is None
