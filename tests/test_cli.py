"""Tests for repro.cli."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import load_json, report_from_dict


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("fig1", "table1", "fig2", "table2", "fig3", "sec6", "sec7",
                        "harvest", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_common_options(self):
        args = build_parser().parse_args(["fig1", "--seed", "9", "--scale", "0.2"])
        assert args.seed == 9
        assert args.scale == 0.2

    def test_table2_options(self):
        args = build_parser().parse_args(
            ["table2", "--sweep-hours", "4", "--thinning", "0.5", "--top", "10"]
        )
        assert args.sweep_hours == 4
        assert args.thinning == 0.5
        assert args.top == 10

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestExecution:
    def test_fig1_runs_and_archives(self, tmp_path, capsys):
        json_path = tmp_path / "fig1.json"
        code = main(["fig1", "--scale", "0.02", "--json", str(json_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig1-open-ports" in out
        assert "55080-Skynet" in out
        report = report_from_dict(load_json(json_path))
        assert report.experiment == "fig1-open-ports"

    def test_harvest_runs(self, capsys):
        code = main(
            ["harvest", "--scale", "0.01", "--ips", "6", "--relays-per-ip", "8"]
        )
        assert code == 0
        assert "harvest-shadow-relays" in capsys.readouterr().out

    def test_fig3_runs(self, capsys):
        code = main(["fig3", "--relays", "200", "--clients", "300", "--days", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3-client-geomap" in out


class TestCrashtest:
    def test_parser_registers_crashtest(self):
        args = build_parser().parse_args(
            ["crashtest", "--crash-profile", "light", "--min-crashes", "2"]
        )
        assert args.command == "crashtest"
        assert args.crash_profile == "light"
        assert args.min_crashes == 2
        assert args.scale == 0.02
        assert args.store == ".repro-crashtest-store"

    def test_crashtest_survives_the_moderate_schedule(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.io import load_json
        from repro.supervise import CRASHES_ENV, CompletenessManifest

        monkeypatch.delenv(CRASHES_ENV, raising=False)
        crash_json = tmp_path / "crash.json"
        clean_json = tmp_path / "clean.json"
        manifest_json = tmp_path / "manifest.json"
        code = main(
            [
                "crashtest",
                "--scale",
                "0.02",
                "--seed",
                "11",
                "--store",
                str(tmp_path / "store"),
                "--json",
                str(crash_json),
                "--clean-json",
                str(clean_json),
                "--manifest-out",
                str(manifest_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crashtest: OK" in out
        assert "byte-identical" in out
        # The archived documents are what CI byte-compares.
        assert crash_json.read_bytes() == clean_json.read_bytes()
        manifest = CompletenessManifest.from_dict(load_json(manifest_json))
        assert manifest.complete
        assert len(manifest.crashes) >= 5
        assert len({e.point for e in manifest.crashes}) >= 5
        assert manifest.restarts_used >= 5
        assert manifest.crash_plan["name"] == "moderate"

    def test_crashtest_fails_below_min_crashes(self, tmp_path, capsys):
        code = main(
            [
                "crashtest",
                "--scale",
                "0.02",
                "--seed",
                "11",
                "--crash-profile",
                "none",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "crashtest: FAIL" in err
        assert "need >= 5" in err


class TestObservability:
    def test_obs_prints_text_snapshot(self, capsys):
        code = main(["obs", "--scale", "0.01", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# metrics" in out
        assert "scan_ports_requested_total" in out
        assert "# spans (simulated seconds)" in out
        assert "pipeline.scan" in out

    def test_obs_json_format_parses(self, capsys):
        code = main(["obs", "--scale", "0.01", "--seed", "3", "--format", "json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in document["metrics"]}
        assert "scan_ports_requested_total" in names
        assert document["spans"]

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "metrics.txt"
        code = main(
            ["fig1", "--scale", "0.01", "--metrics-out", str(snap)]
        )
        assert code == 0
        assert f"[metrics snapshot written to {snap}]" in capsys.readouterr().out
        assert "# metrics" in snap.read_text()

    def test_metrics_env_variable_is_the_default(
        self, tmp_path, capsys, monkeypatch
    ):
        snap = tmp_path / "metrics.json"
        monkeypatch.setenv("REPRO_METRICS", str(snap))
        assert main(["obs", "--scale", "0.01", "--seed", "3"]) == 0
        capsys.readouterr()
        json.loads(snap.read_text())


class TestStoreCli:
    def test_warm_rerun_replays_and_matches_bytes(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        args = ["fig1", "--scale", "0.02", "--store", root]
        assert main(args + ["--json", str(first)]) == 0
        capsys.readouterr()
        assert main(args + ["--json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

        assert main(["store", "ls", "--store", root]) == 0
        out = capsys.readouterr().out
        assert "run-000002" in out
        assert "misses=0" in out

    def test_store_env_variable_is_the_default(self, tmp_path, monkeypatch, capsys):
        root = tmp_path / "env-store"
        monkeypatch.setenv("REPRO_STORE", str(root))
        assert main(["fig1", "--scale", "0.02"]) == 0
        capsys.readouterr()
        assert main(["store", "ls"]) == 0
        assert "misses=" in capsys.readouterr().out
        assert (root / "ledger.jsonl").exists()

    def test_store_verify_and_gc_clean(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        assert main(["fig1", "--scale", "0.02", "--store", root]) == 0
        capsys.readouterr()
        assert main(["store", "verify", "--store", root]) == 0
        assert "[verify: 0 problem(s)" in capsys.readouterr().out
        assert main(["store", "gc", "--store", root]) == 0
        assert "removed 0 object(s)" in capsys.readouterr().out

    def test_store_verify_flags_corruption(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main(["fig1", "--scale", "0.02", "--store", str(root)]) == 0
        capsys.readouterr()
        victim = next((root / "objects").glob("*/*.json"))
        victim.write_bytes(b'{"tampered": true}')
        assert main(["store", "verify", "--store", str(root)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_store_without_configuration_exits_two(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "ls"]) == 2
        assert "no store configured" in capsys.readouterr().err
