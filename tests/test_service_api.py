"""The query API: routes, conditional caching, and the determinism matrix."""

import json

import pytest

from repro.obs.scope import Observer
from repro.service import (
    SCHEMA_VERSION,
    VIEW_KINDS,
    EpochController,
    InProcessClient,
    ServiceRouter,
)

from tests.conftest import make_service_config

#: The query surface the determinism matrix pins, one path per view kind.
VIEW_PATHS = tuple(f"/v1/epochs/0/{kind}" for kind in VIEW_KINDS)

#: workers × fault-profile cells of the determinism matrix (satellite:
#: byte-identical body and ETag at workers 1/2/8, clean and faulted).
WORKER_COUNTS = (1, 2, 8)
FAULT_PROFILES = ("none", "moderate")


@pytest.fixture(scope="module")
def matrix_responses(tmp_path_factory):
    """Every (profile, workers) cell's responses over a fresh store."""
    responses = {}
    for profile in FAULT_PROFILES:
        for workers in WORKER_COUNTS:
            root = tmp_path_factory.mktemp(f"api-{profile}-{workers}")
            controller = EpochController(
                make_service_config(
                    epochs=1,
                    workers=workers,
                    fault_profile=profile,
                    crash_profile="none",
                ),
                str(root),
            )
            controller.run()
            client = InProcessClient(ServiceRouter(controller.records))
            responses[(profile, workers)] = {
                path: client.get(path) for path in VIEW_PATHS
            }
    return responses


class TestDeterminismMatrix:
    @pytest.mark.parametrize("profile", FAULT_PROFILES)
    @pytest.mark.parametrize("path", VIEW_PATHS)
    def test_body_and_etag_identical_across_worker_counts(
        self, matrix_responses, profile, path
    ):
        baseline = matrix_responses[(profile, WORKER_COUNTS[0])][path]
        assert baseline.status == 200
        for workers in WORKER_COUNTS[1:]:
            response = matrix_responses[(profile, workers)][path]
            assert response.body == baseline.body, (
                f"{path} body diverged at workers={workers} "
                f"under profile {profile!r}"
            )
            assert response.etag == baseline.etag

    @pytest.mark.parametrize("path", VIEW_PATHS)
    def test_etag_is_the_quoted_content_digest(self, matrix_responses, path):
        response = matrix_responses[("none", 1)][path]
        assert response.etag.startswith('"sha256:')
        assert response.etag.endswith('"')


@pytest.fixture(scope="module")
def client(service_controller):
    router = ServiceRouter(
        service_controller.records, observer=Observer(name="api-test")
    )
    return InProcessClient(router)


class TestRoutes:
    def test_healthz_reports_epoch_count(self, client):
        response = client.get("/healthz")
        assert response.status == 200
        assert response.json() == {
            "schema": SCHEMA_VERSION,
            "kind": "health",
            "status": "ok",
            "epochs": 3,
        }

    def test_epoch_listing_carries_run_ids_and_digests(self, client):
        document = client.get("/v1/epochs").json()
        assert document["kind"] == "epochs"
        rows = document["epochs"]
        assert [row["epoch"] for row in rows] == [0, 1, 2]
        assert rows[0]["run_id"] == "epoch-000000"
        assert rows[0]["complete"] is True
        assert set(rows[0]["views"]) == set(VIEW_KINDS)

    def test_latest_selector_resolves_newest_epoch(self, client):
        latest = client.get("/v1/epochs/latest/ranking")
        explicit = client.get("/v1/epochs/2/ranking")
        assert latest.body == explicit.body
        assert latest.etag == explicit.etag

    def test_view_response_is_the_stored_envelope(
        self, client, service_controller
    ):
        response = client.get("/v1/epochs/1/topics")
        assert response.json() == service_controller.records[1].views["topics"]

    def test_query_string_and_trailing_slash_are_ignored(self, client):
        plain = client.get("/v1/epochs/0/ports")
        decorated = client.get("/v1/epochs/0/ports/?verbose=1")
        assert decorated.body == plain.body
        assert decorated.etag == plain.etag

    def test_dossier_route_serves_single_onions(
        self, client, service_controller
    ):
        views = service_controller.records[0].views
        onion = next(iter(views["dossiers"]["body"]["onions"]))
        response = client.get(f"/v1/epochs/0/dossier/{onion}")
        assert response.status == 200
        document = response.json()
        assert document["kind"] == "dossier"
        assert document["onion"] == onion

    def test_metrics_route_exports_the_observer_snapshot(self, client):
        response = client.get("/v1/metrics")
        assert response.status == 200
        snapshot = json.loads(response.body.decode("utf-8"))
        assert set(snapshot) >= {"metrics", "events", "dropped_events"}
        names = {entry["name"] for entry in snapshot["metrics"]}
        assert "service_requests_total" in names


class TestConditionalCaching:
    def test_matching_etag_turns_into_304_with_empty_body(self, client):
        first = client.get("/v1/epochs/0/ranking")
        assert first.status == 200
        second = client.get_conditional("/v1/epochs/0/ranking", first.etag)
        assert second.status == 304
        assert second.body == b""
        assert second.etag == first.etag

    def test_stale_etag_returns_full_body(self, client):
        response = client.get_conditional(
            "/v1/epochs/0/ranking", '"sha256:stale"'
        )
        assert response.status == 200
        assert response.body

    def test_cache_hits_are_counted_per_route(self, service_controller):
        router = ServiceRouter(
            service_controller.records, observer=Observer(name="cache-test")
        )
        local = InProcessClient(router)
        etag = local.get("/v1/epochs/0/ranking").etag
        local.get_conditional("/v1/epochs/0/ranking", etag)
        hits = [
            (dict(labels), metric.value)
            for name, labels, metric in router.observer.registry.items()
            if name == "service_cache_hits_total"
        ]
        assert hits == [({"route": "view:ranking"}, 1)]


class TestErrorTaxonomy:
    def test_unknown_epoch_is_a_schema_stamped_404(self, client):
        response = client.get("/v1/epochs/99/ranking")
        assert response.status == 404
        document = response.json()
        assert document["kind"] == "error"
        assert document["status"] == 404
        assert document["error"]["type"] == "ServiceError"

    def test_unknown_route_is_404(self, client):
        assert client.get("/v1/nonsense").status == 404

    def test_unknown_view_kind_is_404(self, client):
        assert client.get("/v1/epochs/0/sparklines").status == 404

    def test_unknown_dossier_onion_is_404(self, client):
        response = client.get("/v1/epochs/0/dossier/" + "z" * 16)
        assert response.status == 404

    def test_non_get_method_is_405(self, service_controller):
        router = ServiceRouter(service_controller.records)
        response = router.handle("POST", "/v1/epochs")
        assert response.status == 405
        body = json.loads(response.body.decode("utf-8"))
        assert body["error"]["type"] == "ServiceError"
