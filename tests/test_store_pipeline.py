"""End-to-end checkpoint/resume equivalence through the real pipeline.

The store's contract: runs through a store — cold, warm, or mixed —
produce artifacts byte-identical to a run with no store at all.  The
hard case is mixed: stages share the transport's RNG stream, so a cache
hit must *restore* the post-stage cursor before the next cold stage
draws from it.
"""

import json

import pytest

from repro import io as repro_io
from repro.experiments.pipeline import MeasurementPipeline
from repro.store import ArtifactStore

SEED = 7
SCALE = 0.02


def canonical(data):
    return json.dumps(data, sort_keys=True)


def make_pipeline(store=None, profile="none"):
    return MeasurementPipeline(
        seed=SEED, scale=SCALE, fault_profile=profile, store=store
    )


@pytest.fixture(scope="module")
def storeless_outcome():
    """The reference: the full campaign with no store anywhere."""
    return make_pipeline().classify()


@pytest.fixture(scope="module")
def warm_root(tmp_path_factory, storeless_outcome):
    """A store primed by one full cold campaign (classification returned)."""
    root = tmp_path_factory.mktemp("store") / "s"
    pipeline = make_pipeline(ArtifactStore(root))
    pipeline.certificates()
    cold = pipeline.classify()
    assert canonical(repro_io.classification_to_dict(cold)) == canonical(
        repro_io.classification_to_dict(storeless_outcome)
    )
    return root


class TestWarmEqualsCold:
    def test_warm_run_recomputes_nothing(self, warm_root, storeless_outcome):
        # Mirror the cold run's stage order: the transport cursor is part
        # of each key, so a warm run replays the same stage sequence.
        store = ArtifactStore(warm_root)
        pipeline = make_pipeline(store)
        pipeline.certificates()
        warm = pipeline.classify()
        summary = store.ledger.run_summaries()[-1]
        assert summary["misses"] == 0
        assert summary["hits"] == 4  # scan, certificates, crawl, classify
        assert canonical(repro_io.classification_to_dict(warm)) == canonical(
            repro_io.classification_to_dict(storeless_outcome)
        )

    def test_certificates_replay_too(self, warm_root):
        store = ArtifactStore(warm_root)
        pipeline = make_pipeline(store)
        analysis = pipeline.certificates()
        assert analysis.total_certificates > 0
        events = [e for e in store.ledger.entries() if e["run"] == store.run_id]
        assert all(e["event"] == "hit" for e in events)


class TestMixedWarmCold:
    def test_replayed_prefix_feeds_cold_suffix_identically(
        self, tmp_path_factory, storeless_outcome
    ):
        root = tmp_path_factory.mktemp("mixed") / "s"
        # First session checkpoints only the scan (a fig1-style run).
        make_pipeline(ArtifactStore(root)).scan()

        # Second session replays the scan from the store — restoring the
        # transport cursor — then computes crawl and classify cold.
        store = ArtifactStore(root)
        mixed = make_pipeline(store).classify()
        events = {
            e["stage"]: e["event"]
            for e in store.ledger.entries()
            if e["run"] == store.run_id
        }
        assert events == {"scan": "hit", "crawl": "miss", "classify": "miss"}
        assert canonical(repro_io.classification_to_dict(mixed)) == canonical(
            repro_io.classification_to_dict(storeless_outcome)
        )


class TestWorkerCount:
    def test_workers_key_separately_but_agree_byte_for_byte(self, warm_root):
        """The worker count is part of the key (a workers-8 run never
        replays a serial checkpoint), yet the artifacts are identical —
        the executor's worker-invariance carried into the store."""
        store = ArtifactStore(warm_root)
        pipeline = MeasurementPipeline(
            seed=SEED, scale=SCALE, fault_profile="none", workers=8, store=store
        )
        scan8 = pipeline.scan()
        events = [e for e in store.ledger.entries() if e["run"] == store.run_id]
        assert [e["event"] for e in events] == ["miss"]

        serial_object = next(
            e["object"]
            for e in store.ledger.entries()
            if e["stage"] == "scan" and e["event"] == "miss"
        )
        serial_artifact = store.cas.get(serial_object)["artifact"]
        assert canonical(repro_io.scan_to_dict(scan8)) == canonical(serial_artifact)


class TestFaultedProfile:
    def test_warm_equals_cold_under_faults(self, tmp_path_factory):
        """Fault state (injection counters, retry RNG) rides the cursor."""
        root = tmp_path_factory.mktemp("faulted") / "s"
        cold = make_pipeline(ArtifactStore(root), profile="moderate").classify()

        store = ArtifactStore(root)
        warm = make_pipeline(store, profile="moderate").classify()
        assert store.ledger.run_summaries()[-1]["misses"] == 0
        assert canonical(repro_io.classification_to_dict(warm)) == canonical(
            repro_io.classification_to_dict(cold)
        )

    def test_fault_profile_is_part_of_the_key(self, warm_root):
        """A faulted run must never replay a fault-free artifact."""
        store = ArtifactStore(warm_root)
        make_pipeline(store, profile="moderate").scan()
        events = [e for e in store.ledger.entries() if e["run"] == store.run_id]
        assert [e["event"] for e in events] == ["miss"]
