"""Tests for repro.obs — metrics, spans, events, export, pmap threading."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_BUCKETS,
    EventLog,
    Histogram,
    MetricsRegistry,
    NULL_OBSERVER,
    Observer,
    ensure_observer,
    render_json,
    render_spans,
    render_text,
    resolve_metrics_out,
    write_snapshot,
)
from repro.parallel import pmap


class TestCounters:
    def test_counts_and_merges(self):
        registry = MetricsRegistry()
        registry.counter("probes_total").inc()
        registry.counter("probes_total").inc(4)
        assert registry.counter("probes_total").value == 5

        shard = MetricsRegistry("shard")
        shard.counter("probes_total").inc(3)
        registry.merge(shard)
        assert registry.counter("probes_total").value == 8

    def test_labels_fork_series(self):
        registry = MetricsRegistry()
        registry.counter("outcomes_total", outcome="open").inc()
        registry.counter("outcomes_total", outcome="timeout").inc(2)
        assert registry.counter("outcomes_total", outcome="open").value == 1
        assert registry.counter("outcomes_total", outcome="timeout").value == 2

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("c", b="2", a="1").inc()
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", a="1", b="2").value == 2
        assert len(registry) == 1

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")


class TestGauges:
    def test_last_write_wins_on_merge(self):
        registry = MetricsRegistry()
        registry.gauge("open_ports").set(10)
        shard = MetricsRegistry("shard")
        shard.gauge("open_ports").set(7)
        registry.merge(shard)
        assert registry.gauge("open_ports").value == 7

    def test_unwritten_gauge_merges_away(self):
        registry = MetricsRegistry()
        registry.gauge("open_ports").set(10)
        shard = MetricsRegistry("shard")
        shard.gauge("open_ports")  # created, never set
        registry.merge(shard)
        assert registry.gauge("open_ports").value == 10


class TestHistograms:
    def test_bucket_edges_are_inclusive(self):
        # bisect_left semantics: value == bound lands in that bound's
        # bucket (Prometheus ``le`` — less-than-or-equal).
        histogram = Histogram(bounds=(1.0, 10.0))
        histogram.observe(1.0)
        histogram.observe(1.5)
        histogram.observe(10.0)
        histogram.observe(11.0)
        assert histogram.counts == [1, 2, 1]
        assert histogram.cumulative() == [
            (1.0, 1),
            (10.0, 3),
            (float("inf"), 4),
        ]
        assert histogram.sum == 23.5
        assert histogram.count == 4

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_merge_adds_vectors(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_bound_mismatch_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_registry_bound_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("latency", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("latency", buckets=(1.0, 3.0))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(2.0, 1.0))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())


class TestSpans:
    def test_add_time_credits_innermost_open_span(self):
        observer = Observer()
        with observer.span("campaign"):
            observer.add_time(10)
            with observer.span("day", day=0):
                observer.add_time(86400)
            observer.add_time(5)
        campaign = observer.spans[0]
        assert campaign.own_seconds == 15
        assert campaign.duration == 15 + 86400
        assert campaign.children[0].name == "day"
        assert campaign.children[0].attrs == (("day", "0"),)

    def test_toplevel_spans_in_creation_order(self):
        observer = Observer()
        with observer.span("scan"):
            pass
        with observer.span("crawl"):
            pass
        assert [span.name for span in observer.spans] == ["scan", "crawl"]

    def test_absorb_grafts_under_open_span(self):
        parent = Observer()
        child = parent.child("shard@0")
        with child.span("probe"):
            child.add_time(3)
        with parent.span("scan.day"):
            parent.absorb(child)
        day = parent.spans[0]
        assert [span.name for span in day.children] == ["probe"]
        assert day.duration == 3

    def test_negative_time_rejected(self):
        observer = Observer()
        with observer.span("s"):
            with pytest.raises(ObservabilityError):
                observer.add_time(-1)


class TestEventLog:
    def test_bound_counts_overflow(self):
        log = EventLog(max_events=2)
        log.add("a")
        log.add("b")
        log.add("c")
        assert len(log) == 2
        assert log.dropped == 1

    def test_extend_respects_bound(self):
        log = EventLog(max_events=2)
        log.add("a")
        other = EventLog(max_events=10)
        other.add("b")
        other.add("c")
        log.extend(other)
        assert [event.name for event in log.events] == ["a", "b"]
        assert log.dropped == 1


class TestObserver:
    def test_disabled_observer_records_nothing(self):
        observer = Observer.disabled()
        observer.count("c")
        observer.gauge("g", 1)
        observer.observe("h", 2.0)
        observer.event("e")
        with observer.span("s"):
            observer.add_time(10)
        assert len(observer.registry) == 0
        assert len(observer.events) == 0
        assert observer.spans == []

    def test_null_observer_is_shared_and_inert(self):
        assert ensure_observer(None) is NULL_OBSERVER
        NULL_OBSERVER.count("c")
        assert len(NULL_OBSERVER.registry) == 0

    def test_ensure_observer_passes_through(self):
        observer = Observer()
        assert ensure_observer(observer) is observer

    def test_absorb_merges_all_planes(self):
        parent = Observer()
        parent.count("c")
        child = parent.child("shard@0")
        child.count("c", amount=2)
        child.gauge("g", 9)
        child.event("flap", onion="x")
        parent.absorb(child)
        assert parent.registry.counter("c").value == 3
        assert parent.registry.gauge("g").value == 9
        assert parent.events.events[0].name == "flap"


class TestPmapObserver:
    @staticmethod
    def _observed_square(item, obs):
        obs.count("items_total")
        obs.observe("item_value", item, buckets=(2.0, 8.0))
        return item * item

    def test_snapshot_identical_at_every_worker_count(self):
        snapshots = set()
        results = set()
        for workers in (1, 2, 8):
            observer = Observer()
            out = pmap(
                self._observed_square,
                list(range(12)),
                workers=workers,
                observer=observer,
            )
            results.add(tuple(out))
            snapshots.add(render_text(observer))
        assert len(results) == 1
        assert len(snapshots) == 1
        assert "items_total" in next(iter(snapshots))

    def test_disabled_observer_skips_instrumented_call(self):
        # A disabled observer is treated as "nobody watching": fn is called
        # without the extra argument, so plain single-arg fns still work.
        observer = Observer.disabled()
        out = pmap(lambda item: item + 1, [1, 2, 3], workers=2, observer=observer)
        assert out == [2, 3, 4]


class TestExport:
    def _populated_observer(self):
        observer = Observer(name="test")
        observer.count("probes_total", amount=3, api="scan")
        observer.gauge("open_ports", 7)
        observer.observe("settle_seconds", 2.0, buckets=(1.0, 5.0))
        observer.event("flap", onion="abc")
        with observer.span("campaign", days=2):
            observer.add_time(120)
        return observer

    def test_text_sections_and_sorting(self):
        text = render_text(self._populated_observer())
        assert text.startswith("# metrics\n")
        assert '\nprobes_total{api="scan"} 3\n' in text
        assert '\nsettle_seconds_bucket{le="+Inf"} 1\n' in text
        assert "\nsettle_seconds_sum 2\n" in text
        assert "# spans (simulated seconds)" in text
        assert 'campaign{days="2"} duration=120s own=120s' in text
        assert "# events (dropped=0)" in text
        assert 'flap{onion="abc"}' in text
        # Metric families appear in name-sorted order (bucket rows within a
        # histogram stay in bound order, so whole lines aren't comparable).
        metric_lines = text.split("\n\n")[0].splitlines()[1:]
        families = []
        for line in metric_lines:
            family = line.split("{")[0].split(" ")[0]
            family = family.removesuffix("_bucket").removesuffix(
                "_sum"
            ).removesuffix("_count")
            if family not in families:
                families.append(family)
        assert families == sorted(families)

    def test_render_is_deterministic(self):
        assert render_text(self._populated_observer()) == render_text(
            self._populated_observer()
        )

    def test_json_round_trips(self):
        document = json.loads(render_json(self._populated_observer()))
        by_name = {entry["name"]: entry for entry in document["metrics"]}
        assert by_name["probes_total"]["value"] == 3
        assert by_name["probes_total"]["labels"] == {"api": "scan"}
        assert by_name["settle_seconds"]["count"] == 1
        assert document["spans"][0]["duration"] == 120
        assert document["events"][0]["fields"] == {"onion": "abc"}
        assert document["dropped_events"] == 0

    def test_empty_observer_renders_placeholders(self):
        text = render_text(Observer())
        assert "(none)" in text
        assert render_spans(Observer()) == "# spans (simulated seconds)\n(none)"

    def test_write_snapshot_text_and_json(self, tmp_path):
        observer = self._populated_observer()
        text_path = tmp_path / "snap.txt"
        json_path = tmp_path / "snap.json"
        write_snapshot(observer, str(text_path))
        write_snapshot(observer, str(json_path))
        assert text_path.read_text() == render_text(observer) + "\n"
        json.loads(json_path.read_text())

    def test_resolve_metrics_out(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert resolve_metrics_out(None) is None
        assert resolve_metrics_out("x.txt") == "x.txt"
        monkeypatch.setenv("REPRO_METRICS", "env.txt")
        assert resolve_metrics_out(None) == "env.txt"
        assert resolve_metrics_out("x.txt") == "x.txt"
        monkeypatch.setenv("REPRO_METRICS", "   ")
        assert resolve_metrics_out(None) is None
