"""Serial ≡ parallel: every experiment's artifact is worker-count-invariant.

Each small-world experiment renders its full report text at ``workers=1``
and at genuinely parallel worker counts; the strings must be **identical
bytes**.  This is the acceptance gate for ``repro.parallel``: stable
shards, per-item RNG streams keyed on global index, and shard-order merges
mean the worker count can change throughput but never output.
"""

import random

import pytest

from repro.crypto.onion import onion_address_from_key
from repro.popularity.resolver import DescriptorResolver
from repro.sim.clock import parse_date
from tests.goldens.cases import (
    build_sec7_world,
    faulted_pipeline_artifacts,
    pipeline_artifacts,
    sec7_artifact,
    table2_artifact,
)

#: The acceptance criterion's worker counts: serial, small pool, oversubscribed.
WORKER_COUNTS = (1, 2, 8)


class TestResolverEquivalence:
    """Index build over the real batch API, pooled vs serial."""

    @pytest.fixture(scope="class")
    def onions(self):
        rng = random.Random(5)
        return [onion_address_from_key(rng.randbytes(140)) for _ in range(120)]

    def test_index_identical_at_every_worker_count(self, onions):
        start = parse_date("2013-01-28")
        end = parse_date("2013-02-08")
        resolvers = [
            DescriptorResolver(onions, start, end, workers=workers)
            for workers in WORKER_COUNTS
        ]
        baseline = resolvers[0]
        assert baseline.index_size > 0
        for other in resolvers[1:]:
            assert other._index == baseline._index
            assert other._validity == baseline._validity
            assert other.collisions == baseline.collisions

    def test_env_variable_is_equivalent_to_argument(self, onions, monkeypatch):
        start = parse_date("2013-01-28")
        end = parse_date("2013-02-08")
        explicit = DescriptorResolver(onions, start, end, workers=2)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        from_env = DescriptorResolver(onions, start, end)
        assert from_env._index == explicit._index


class TestExperimentEquivalence:
    """fig1, fig2, table2 and sec7 report text at workers = 1, 2, 8."""

    def test_fig1_and_fig2_byte_identical(self):
        runs = [pipeline_artifacts(workers=workers) for workers in WORKER_COUNTS]
        for name in ("fig1_small", "fig2_small", "metrics_small"):
            texts = {run[name] for run in runs}
            assert len(texts) == 1, f"{name} differs across worker counts"

    def test_table2_byte_identical(self):
        texts = {table2_artifact(workers=workers) for workers in WORKER_COUNTS}
        assert len(texts) == 1, "table2 report differs across worker counts"

    def test_sec7_byte_identical(self):
        world = build_sec7_world()
        texts = {
            sec7_artifact(workers=workers, world=world)
            for workers in WORKER_COUNTS
        }
        assert len(texts) == 1, "sec7 report differs across worker counts"


class TestFaultedEquivalence:
    """Determinism survives fault injection: every injected timeout, flap
    and truncation is drawn from a stream keyed on (onion, port, attempt),
    so a faulted run is just as worker-count-invariant as a clean one."""

    def test_faulted_fig1_and_fig2_byte_identical(self):
        runs = [
            faulted_pipeline_artifacts(workers=workers)
            for workers in WORKER_COUNTS
        ]
        for name in ("fig1_small", "fig2_small", "metrics_small"):
            texts = {run[name] for run in runs}
            assert len(texts) == 1, (
                f"faulted {name} differs across worker counts"
            )

    def test_faulted_run_is_repeatable(self):
        first = faulted_pipeline_artifacts(workers=2)
        second = faulted_pipeline_artifacts(workers=2)
        assert first == second, "same seed + profile must replay identically"

    def test_faults_actually_fired(self):
        clean = pipeline_artifacts(workers=1)["fig1_small"]
        faulted = faulted_pipeline_artifacts(workers=1)["fig1_small"]
        assert clean != faulted, "moderate profile should perturb the artifact"
        assert "transient recovered" in faulted
        assert "fault profile 'moderate' active" in faulted
