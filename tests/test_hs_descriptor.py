"""Tests for repro.hs.descriptor."""

import random

import pytest

from repro.crypto.descriptor_id import REPLICAS, descriptor_id
from repro.crypto.keys import KeyPair
from repro.errors import DescriptorError
from repro.hs.descriptor import HSDescriptor, make_descriptors
from repro.sim.clock import DAY, parse_date

FEB4 = parse_date("2013-02-04")
KEYPAIR = KeyPair.generate(random.Random(1))


class TestMakeDescriptors:
    def test_one_per_replica(self):
        descriptors = make_descriptors(KEYPAIR, FEB4)
        assert len(descriptors) == REPLICAS
        assert {d.replica for d in descriptors} == set(range(REPLICAS))

    def test_ids_match_crypto_layer(self):
        descriptors = make_descriptors(KEYPAIR, FEB4)
        for descriptor in descriptors:
            assert descriptor.descriptor_id == descriptor_id(
                descriptor.onion, FEB4, descriptor.replica
            )

    def test_carries_key_material(self):
        for descriptor in make_descriptors(KEYPAIR, FEB4):
            assert descriptor.public_der == KEYPAIR.public_der

    def test_intro_points_carried(self):
        descriptors = make_descriptors(KEYPAIR, FEB4, introduction_points=("ip1",))
        assert descriptors[0].introduction_points == ("ip1",)


class TestVerify:
    def test_fresh_descriptor_verifies(self):
        for descriptor in make_descriptors(KEYPAIR, FEB4):
            assert descriptor.verify()

    def test_wrong_onion_fails(self):
        descriptor = make_descriptors(KEYPAIR, FEB4)[0]
        forged = HSDescriptor(
            onion="aaaaaaaaaaaaaaaa.onion",
            descriptor_id=descriptor.descriptor_id,
            replica=descriptor.replica,
            public_der=descriptor.public_der,
            published_at=descriptor.published_at,
        )
        assert not forged.verify()

    def test_stale_id_fails(self):
        descriptor = make_descriptors(KEYPAIR, FEB4)[0]
        stale = HSDescriptor(
            onion=descriptor.onion,
            descriptor_id=descriptor.descriptor_id,
            replica=descriptor.replica,
            public_der=descriptor.public_der,
            published_at=descriptor.published_at + 2 * DAY,
        )
        assert not stale.verify()


class TestToStored:
    def test_conversion_preserves_fields(self):
        descriptor = make_descriptors(KEYPAIR, FEB4)[0]
        stored = descriptor.to_stored()
        assert stored.descriptor_id == descriptor.descriptor_id
        assert stored.public_der == descriptor.public_der
        assert stored.replica == descriptor.replica
        assert stored.published_at == descriptor.published_at
