"""Tests for repro.sim.engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine


class TestScheduling:
    def test_fires_in_time_order(self):
        engine = EventEngine(SimClock(0))
        fired = []
        engine.schedule_at(10, lambda: fired.append("late"))
        engine.schedule_at(5, lambda: fired.append("early"))
        engine.run_until(20)
        assert fired == ["early", "late"]

    def test_same_time_fires_in_scheduling_order(self):
        engine = EventEngine(SimClock(0))
        fired = []
        for tag in ("a", "b", "c"):
            engine.schedule_at(7, lambda t=tag: fired.append(t))
        engine.run_until(7)
        assert fired == ["a", "b", "c"]

    def test_schedule_in_is_relative(self):
        engine = EventEngine(SimClock(100))
        fired = []
        engine.schedule_in(5, lambda: fired.append(engine.now))
        engine.run_until(200)
        assert fired == [105]

    def test_cannot_schedule_in_past(self):
        engine = EventEngine(SimClock(100))
        with pytest.raises(SimulationError):
            engine.schedule_at(99, lambda: None)

    def test_negative_delay_rejected(self):
        engine = EventEngine(SimClock(0))
        with pytest.raises(SimulationError):
            engine.schedule_in(-1, lambda: None)

    def test_clock_advances_to_run_until_target(self):
        engine = EventEngine(SimClock(0))
        engine.run_until(42)
        assert engine.now == 42

    def test_run_until_cannot_go_backwards(self):
        engine = EventEngine(SimClock(10))
        with pytest.raises(SimulationError):
            engine.run_until(5)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = EventEngine(SimClock(0))
        fired = []
        event = engine.schedule_at(5, lambda: fired.append(1))
        event.cancel()
        engine.run_until(10)
        assert fired == []

    def test_pending_excludes_cancelled(self):
        engine = EventEngine(SimClock(0))
        event = engine.schedule_at(5, lambda: None)
        engine.schedule_at(6, lambda: None)
        assert engine.pending == 2
        event.cancel()
        assert engine.pending == 1


class TestCascading:
    def test_event_can_schedule_more_events(self):
        engine = EventEngine(SimClock(0))
        fired = []

        def first():
            fired.append("first")
            engine.schedule_in(1, lambda: fired.append("second"))

        engine.schedule_at(5, first)
        engine.run_until(10)
        assert fired == ["first", "second"]

    def test_chained_event_beyond_horizon_waits(self):
        engine = EventEngine(SimClock(0))
        fired = []
        engine.schedule_at(5, lambda: engine.schedule_in(100, lambda: fired.append(1)))
        engine.run_until(10)
        assert fired == []
        engine.run_until(200)
        assert fired == [1]

    def test_run_all_guard_against_runaway(self):
        engine = EventEngine(SimClock(0))

        def rearm():
            engine.schedule_in(1, rearm)

        engine.schedule_at(1, rearm)
        with pytest.raises(SimulationError):
            engine.run_all(limit=50)

    def test_events_fired_counter(self):
        engine = EventEngine(SimClock(0))
        for t in range(5):
            engine.schedule_at(t + 1, lambda: None)
        engine.run_until(10)
        assert engine.events_fired == 5
