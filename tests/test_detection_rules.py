"""Tests for repro.detection.rules."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.detection.rules import DetectionThresholds, binomial_threshold
from repro.errors import AttackError


class TestBinomialThreshold:
    def test_known_value(self):
        # μ = 365 × 6/1200 = 1.825; σ = sqrt(1.8159) ≈ 1.3476
        threshold = binomial_threshold(365, 6 / 1200)
        assert threshold == pytest.approx(1.825 + 3 * math.sqrt(365 * 0.005 * 0.995), rel=1e-9)

    def test_zero_periods(self):
        assert binomial_threshold(0, 0.5) == 0.0

    def test_certain_event_has_no_variance(self):
        assert binomial_threshold(100, 1.0) == 100.0

    def test_negative_periods_rejected(self):
        with pytest.raises(AttackError):
            binomial_threshold(-1, 0.5)

    def test_bad_probability_rejected(self):
        with pytest.raises(AttackError):
            binomial_threshold(10, 1.5)

    @given(
        st.integers(min_value=1, max_value=2000),
        st.floats(min_value=0.0001, max_value=0.5),
    )
    def test_threshold_above_mean(self, n, p):
        assert binomial_threshold(n, p) >= n * p

    @given(st.integers(min_value=1, max_value=2000))
    def test_monotone_in_sigmas(self, n):
        assert binomial_threshold(n, 0.01, sigmas=2) <= binomial_threshold(
            n, 0.01, sigmas=3
        )


class TestDetectionThresholds:
    def test_defaults_valid(self):
        thresholds = DetectionThresholds()
        assert thresholds.ratio_suspicious == 100.0
        assert thresholds.ratio_extreme == 10_000.0
        assert thresholds.fresh_fingerprint_periods == 2

    def test_bad_sigmas(self):
        with pytest.raises(AttackError):
            DetectionThresholds(frequency_sigmas=0)

    def test_ratio_ordering_enforced(self):
        with pytest.raises(AttackError):
            DetectionThresholds(ratio_suspicious=1000, ratio_extreme=100)

    def test_consecutive_minimum(self):
        with pytest.raises(AttackError):
            DetectionThresholds(consecutive_min_periods=1)

    def test_fresh_min_events(self):
        with pytest.raises(AttackError):
            DetectionThresholds(fresh_fingerprint_min_events=0)
