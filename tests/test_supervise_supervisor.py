"""Tests for repro.supervise — the EpochSupervisor and its manifest.

These run against a tiny fake pipeline (an in-memory "store" dict plays
the checkpoint role) so restart, budget, and degradation semantics are
exercised without paying for real campaigns; crash-resume equivalence on
the real ``MeasurementPipeline`` lives in test_supervise_equivalence.py.
"""

import pytest

from repro.errors import SupervisionError
from repro.obs.scope import Observer
from repro.supervise import (
    REASON_DEADLINE,
    REASON_NONE,
    REASON_RESTARTS,
    STAGE_COMPLETE,
    STAGE_DEADLINE_EXCEEDED,
    STAGE_MISSING,
    CompletenessManifest,
    CrashEvent,
    CrashPlan,
    CrashRule,
    EpochSupervisor,
    RestartPolicy,
    StageStatus,
    stage_enter,
    stage_exit,
    stage_methods,
    supervise_stages,
)

STAGES = ("alpha", "beta")


class FakeCheckpoints:
    """The part of a store a supervised pipeline needs: committed results
    that survive process death (here: survive factory re-invocation)."""

    def __init__(self):
        self.results = {}
        #: Every compute that actually ran, across all incarnations.
        self.computed = []


class FakePipeline:
    """Stage methods named like the supervisor's stage list, bracketed by
    the same enter/exit crash points the real pipeline threads."""

    def __init__(self, crash_points, quarantine, checkpoints, costs=None):
        self.crash_point = crash_points
        self.quarantine = quarantine
        self.checkpoints = checkpoints
        self.costs = costs or {}
        self.observer = Observer(name="fake")

    def _stage(self, name):
        self.crash_point(stage_enter(name))
        if name not in self.checkpoints.results:
            with self.observer.span(f"fake.{name}"):
                self.observer.add_time(self.costs.get(name, 5))
            self.checkpoints.computed.append(name)
            self.checkpoints.results[name] = f"{name}-result"
        self.crash_point(stage_exit(name))

    def alpha(self):
        self._stage("alpha")

    def beta(self):
        self._stage("beta")


def make_factory(checkpoints, costs=None):
    def factory(crash_points, quarantine):
        return FakePipeline(crash_points, quarantine, checkpoints, costs)

    return factory


def plan_of(*rules, seed=0):
    return CrashPlan(seed=seed, rules=tuple(rules), name="custom")


class TestCleanRun:
    def test_inert_plan_completes_without_restarts(self):
        checkpoints = FakeCheckpoints()
        outcome = supervise_stages(make_factory(checkpoints), plan_of(), stages=STAGES)
        manifest = outcome.manifest
        assert outcome.completed
        assert manifest.complete
        assert manifest.restarts_used == 0
        assert manifest.backoff_sim_seconds == 0
        assert manifest.reason == REASON_NONE
        assert [s.status for s in manifest.stages] == [STAGE_COMPLETE] * 2
        assert checkpoints.computed == ["alpha", "beta"]

    def test_stage_sim_seconds_come_from_the_span_tree(self):
        checkpoints = FakeCheckpoints()
        outcome = supervise_stages(
            make_factory(checkpoints, costs={"alpha": 30, "beta": 7}),
            plan_of(),
            stages=STAGES,
        )
        by_name = {s.name: s.sim_seconds for s in outcome.manifest.stages}
        assert by_name == {"alpha": 30, "beta": 7}


class TestRestarts:
    def test_crash_restarts_and_resumes_from_checkpoints(self):
        checkpoints = FakeCheckpoints()
        outcome = supervise_stages(
            make_factory(checkpoints),
            plan_of(CrashRule(stage_exit("alpha"), 1)),
            stages=STAGES,
        )
        manifest = outcome.manifest
        assert manifest.complete
        assert manifest.restarts_used == 1
        assert manifest.backoff_sim_seconds >= 1
        assert manifest.crashes == [CrashEvent(stage_exit("alpha"), 1)]
        # alpha committed before the exit crash, so the second life
        # replays it instead of recomputing — each stage computes once.
        assert checkpoints.computed == ["alpha", "beta"]

    def test_sim_seconds_keep_the_computing_lifes_cost(self):
        checkpoints = FakeCheckpoints()
        outcome = supervise_stages(
            make_factory(checkpoints, costs={"alpha": 40}),
            plan_of(CrashRule(stage_enter("beta"), 1)),
            stages=STAGES,
        )
        by_name = {s.name: s.sim_seconds for s in outcome.manifest.stages}
        # Life 2 replays alpha at ~0 sim-seconds; the manifest must still
        # report the 40 the computing life spent.
        assert by_name["alpha"] == 40

    def test_restarts_exhausted_degrades_instead_of_raising(self):
        checkpoints = FakeCheckpoints()
        plan = plan_of(
            CrashRule(stage_enter("alpha"), 1),
            CrashRule(stage_enter("alpha"), 2),
            CrashRule(stage_enter("alpha"), 3),
        )
        supervisor = EpochSupervisor(plan, policy=RestartPolicy(max_restarts=2))
        outcome = supervisor.run(make_factory(checkpoints), stages=STAGES)
        manifest = outcome.manifest
        assert not outcome.completed
        assert manifest.degraded
        assert manifest.reason == REASON_RESTARTS
        assert manifest.restarts_used == 2
        assert [s.status for s in manifest.stages] == [STAGE_MISSING] * 2
        assert checkpoints.computed == []

    def test_every_scheduled_crash_fires_exactly_once(self):
        checkpoints = FakeCheckpoints()
        plan = plan_of(
            CrashRule(stage_enter("alpha"), 1),
            CrashRule(stage_exit("alpha"), 1),
            CrashRule(stage_enter("beta"), 1),
        )
        outcome = supervise_stages(make_factory(checkpoints), plan, stages=STAGES)
        manifest = outcome.manifest
        assert manifest.complete
        assert manifest.restarts_used == 3
        assert [(e.point, e.visit) for e in manifest.crashes] == [
            (stage_enter("alpha"), 1),
            (stage_exit("alpha"), 1),
            (stage_enter("beta"), 1),
        ]
        assert outcome.crash_points.distinct_points() == (
            stage_enter("alpha"),
            stage_exit("alpha"),
            stage_enter("beta"),
        )


class TestDeadlines:
    def test_blown_budget_degrades_and_skips_remaining_stages(self):
        checkpoints = FakeCheckpoints()
        supervisor = EpochSupervisor(plan_of(), budgets={"alpha": 3})
        outcome = supervisor.run(
            make_factory(checkpoints, costs={"alpha": 10}), stages=STAGES
        )
        manifest = outcome.manifest
        assert manifest.degraded
        assert manifest.reason == REASON_DEADLINE
        by_name = {s.name: s.status for s in manifest.stages}
        assert by_name == {
            "alpha": STAGE_DEADLINE_EXCEEDED,
            "beta": STAGE_MISSING,
        }
        # Deadline degradation is not a crash: no restart was burned.
        assert manifest.restarts_used == 0
        assert checkpoints.computed == ["alpha"]

    def test_budget_within_bounds_is_silent(self):
        supervisor = EpochSupervisor(plan_of(), budgets={"alpha": 100, "beta": 100})
        outcome = supervisor.run(make_factory(FakeCheckpoints()), stages=STAGES)
        assert outcome.manifest.complete

    def test_non_positive_budget_rejected(self):
        with pytest.raises(SupervisionError):
            EpochSupervisor(plan_of(), budgets={"alpha": 0})


class TestSupervisorValidation:
    def test_empty_stage_list_rejected(self):
        with pytest.raises(SupervisionError):
            EpochSupervisor(plan_of()).run(make_factory(FakeCheckpoints()), stages=())

    def test_missing_stage_method_rejected(self):
        with pytest.raises(SupervisionError):
            EpochSupervisor(plan_of()).run(
                make_factory(FakeCheckpoints()), stages=("alpha", "gamma")
            )

    def test_stage_methods_helper(self):
        assert stage_methods(["a", "b"]) == ("a", "b")
        with pytest.raises(SupervisionError):
            stage_methods(["a", "a"])
        with pytest.raises(SupervisionError):
            stage_methods([""])


class TestRestartPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RestartPolicy(base_delay=2, backoff_factor=2.0, jitter=0.0)
        assert [policy.backoff_before(n) for n in (1, 2, 3)] == [2, 4, 8]

    def test_backoff_caps_at_max_delay(self):
        policy = RestartPolicy(
            base_delay=2, backoff_factor=10.0, max_delay=50, jitter=0.0
        )
        assert policy.backoff_before(5) == 50

    def test_jitter_is_deterministic_per_seed(self):
        a = RestartPolicy(seed=1)
        b = RestartPolicy(seed=1)
        c = RestartPolicy(seed=2)
        values_a = [a.backoff_before(n) for n in range(1, 6)]
        assert values_a == [b.backoff_before(n) for n in range(1, 6)]
        assert values_a != [c.backoff_before(n) for n in range(1, 6)]

    def test_jitter_stays_within_bounds(self):
        policy = RestartPolicy(base_delay=100, backoff_factor=1.0, jitter=0.25)
        for restart in range(1, 20):
            assert 75 <= policy.backoff_before(restart) <= 125

    def test_no_backoff_precedes_restart_zero(self):
        with pytest.raises(SupervisionError):
            RestartPolicy().backoff_before(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_restarts": -1},
            {"base_delay": 0},
            {"backoff_factor": 0.5},
            {"base_delay": 10, "max_delay": 5},
            {"jitter": 1.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(SupervisionError):
            RestartPolicy(**kwargs)


class TestManifest:
    def make_manifest(self):
        return CompletenessManifest(
            stages=[
                StageStatus("alpha", STAGE_COMPLETE, sim_seconds=12),
                StageStatus("beta", STAGE_DEADLINE_EXCEEDED, sim_seconds=99),
            ],
            crashes=[CrashEvent("stage:alpha:exit", 1)],
            restarts_used=1,
            backoff_sim_seconds=2,
            quarantined_items=[{"path": "classify", "index": 4, "error": "E: x"}],
            degraded=True,
            reason=REASON_DEADLINE,
            crash_plan={"name": "custom", "seed": 0, "rules": ["stage:alpha:exit@1"]},
        )

    def test_round_trips_through_dict(self):
        manifest = self.make_manifest()
        again = CompletenessManifest.from_dict(manifest.to_dict())
        assert again.to_dict() == manifest.to_dict()

    def test_complete_requires_everything(self):
        manifest = CompletenessManifest(
            stages=[StageStatus("alpha", STAGE_COMPLETE)]
        )
        assert manifest.complete
        manifest.quarantined_items.append({"index": 1})
        assert not manifest.complete

    def test_from_dict_rejects_wrong_kind_and_schema(self):
        good = self.make_manifest().to_dict()
        with pytest.raises(SupervisionError):
            CompletenessManifest.from_dict({**good, "kind": "something-else"})
        with pytest.raises(SupervisionError):
            CompletenessManifest.from_dict({**good, "schema": 99})

    def test_from_dict_rejects_malformed_stage(self):
        good = self.make_manifest().to_dict()
        bad = {**good, "stages": [{"status": "complete"}]}
        with pytest.raises(SupervisionError):
            CompletenessManifest.from_dict(bad)

    def test_unknown_stage_status_rejected(self):
        with pytest.raises(SupervisionError):
            StageStatus("alpha", "half-done")

    def test_summary_lines_name_the_degradation(self):
        text = "\n".join(self.make_manifest().summary_lines())
        assert "stages complete: 1/2" in text
        assert "stage beta: deadline-exceeded" in text
        assert "crashes injected: 1" in text
        assert "items quarantined: 1" in text
        assert "DEGRADED: deadline-exceeded" in text


class TestMetricsExport:
    def test_supervise_counters_land_on_the_observer(self):
        observer = Observer(name="sup")
        supervisor = EpochSupervisor(
            plan_of(CrashRule(stage_exit("alpha"), 1)), observer=observer
        )
        outcome = supervisor.run(make_factory(FakeCheckpoints()), stages=STAGES)
        assert outcome.manifest.complete
        registry = observer.registry
        assert (
            registry.counter(
                "supervise_crashes_total", point=stage_exit("alpha")
            ).value
            == 1
        )
        assert registry.counter("supervise_restarts_total").value == 1
        assert registry.counter("supervise_backoff_sim_seconds_total").value >= 1
        for name in STAGES:
            assert (
                registry.counter(
                    "supervise_stage_outcomes_total",
                    stage=name,
                    status=STAGE_COMPLETE,
                ).value
                == 1
            )
        assert registry.gauge("supervise_degraded").value == 0
        assert registry.gauge("supervise_stages_complete").value == 2

    def test_deadline_and_degradation_metrics(self):
        observer = Observer(name="sup")
        supervisor = EpochSupervisor(
            plan_of(), budgets={"alpha": 1}, observer=observer
        )
        supervisor.run(
            make_factory(FakeCheckpoints(), costs={"alpha": 10}), stages=STAGES
        )
        registry = observer.registry
        assert (
            registry.counter(
                "supervise_deadline_exceeded_total", stage="alpha"
            ).value
            == 1
        )
        assert registry.gauge("supervise_degraded").value == 1
        assert registry.gauge("supervise_stages_complete").value == 0
