"""Tests for repro.classify.naive_bayes."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.errors import ClassificationError


def fitted_model():
    docs = [
        ["cat", "cat", "meow"],
        ["cat", "purr"],
        ["dog", "woof", "dog"],
        ["dog", "bark"],
    ]
    labels = ["cat", "cat", "dog", "dog"]
    return MultinomialNaiveBayes().fit(docs, labels)


class TestFit:
    def test_classes_sorted(self):
        assert fitted_model().classes == ["cat", "dog"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ClassificationError):
            MultinomialNaiveBayes().fit([["a"]], ["x", "y"])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ClassificationError):
            MultinomialNaiveBayes().fit([], [])

    def test_tokenless_corpus_rejected(self):
        with pytest.raises(ClassificationError):
            MultinomialNaiveBayes().fit([[], []], ["a", "b"])

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ClassificationError):
            MultinomialNaiveBayes(smoothing=0)

    def test_vocabulary_size(self):
        assert fitted_model().vocabulary_size == 6


class TestPredict:
    def test_obvious_cases(self):
        model = fitted_model()
        assert model.predict(["meow", "purr"]) == "cat"
        assert model.predict(["woof", "bark"]) == "dog"

    def test_unfitted_raises(self):
        with pytest.raises(ClassificationError):
            MultinomialNaiveBayes().predict(["x"])

    def test_oov_tokens_ignored(self):
        model = fitted_model()
        assert model.predict(["meow", "zebra", "quux"]) == "cat"

    def test_all_oov_falls_back_to_prior(self):
        model = fitted_model()
        # Equal priors → deterministic alphabetical tie-break.
        assert model.predict(["zebra"]) == "cat"

    def test_confidence_is_probability(self):
        label, confidence = fitted_model().predict_with_confidence(["meow"])
        assert label == "cat"
        assert 0.5 < confidence <= 1.0

    def test_log_scores_finite(self):
        scores = fitted_model().log_scores(["cat", "dog"])
        assert all(math.isfinite(v) for v in scores.values())


class TestProperties:
    @settings(max_examples=40)
    @given(st.permutations(["cat", "meow", "purr", "purr", "meow"]))
    def test_prediction_invariant_to_token_order(self, tokens):
        model = fitted_model()
        assert model.predict(tokens) == model.predict(sorted(tokens))

    @settings(max_examples=40)
    @given(
        st.lists(st.sampled_from(["cat", "dog", "meow", "woof"]), min_size=1, max_size=10)
    )
    def test_scores_are_consistent_with_prediction(self, tokens):
        model = fitted_model()
        scores = model.log_scores(tokens)
        predicted = model.predict(tokens)
        assert scores[predicted] == max(scores.values())

    def test_duplicating_evidence_strengthens_confidence(self):
        model = fitted_model()
        _, weak = model.predict_with_confidence(["meow"])
        _, strong = model.predict_with_confidence(["meow"] * 5)
        assert strong >= weak
