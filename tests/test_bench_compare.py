"""`repro bench compare` verdicts and exit codes.

Five paths matter to CI: an improvement and a within-tolerance slowdown
both pass (exit 0), a slowdown past the threshold and a kernel checksum
drift both fail as regressions (exit 1), and a missing baseline or a
schema-version mismatch exit 2 — "not comparable" must never read as
either green or a code regression.
"""

import json
from dataclasses import replace

import pytest

from repro.bench import (
    EXIT_NOT_COMPARABLE,
    EXIT_OK,
    EXIT_REGRESSION,
    Trajectory,
    compare_trajectories,
    compare_within,
    trajectory_path,
    write_trajectory,
)
from repro.cli import main
from tests.test_bench_schema import make_record


def trajectory_with(min_seconds, checksum="ab" * 32, items=64, name="toy"):
    record = make_record(name=name, checksum=checksum, items=items)
    record = replace(
        record,
        wall=replace(
            record.wall,
            mean_seconds=min_seconds,
            min_seconds=min_seconds,
            max_seconds=min_seconds,
            per_repeat_seconds=(min_seconds,),
        ),
    )
    return Trajectory(name=name, points=[record])


class TestCompareTrajectories:
    def test_improvement_passes(self):
        result = compare_trajectories(
            trajectory_with(1.0), trajectory_with(0.5), threshold_pct=20.0
        )
        assert result.exit_code == EXIT_OK
        assert result.points[0].delta_pct == pytest.approx(-50.0)

    def test_within_tolerance_passes(self):
        result = compare_trajectories(
            trajectory_with(1.0), trajectory_with(1.1), threshold_pct=20.0
        )
        assert result.exit_code == EXIT_OK
        assert not result.points[0].regressed

    def test_regression_past_threshold_fails(self):
        result = compare_trajectories(
            trajectory_with(1.0), trajectory_with(1.5), threshold_pct=20.0
        )
        assert result.exit_code == EXIT_REGRESSION
        assert result.points[0].regressed
        assert not result.points[0].checksum_drift

    def test_checksum_drift_fails_even_when_faster(self):
        result = compare_trajectories(
            trajectory_with(1.0, checksum="aa" * 32),
            trajectory_with(0.1, checksum="bb" * 32),
        )
        assert result.exit_code == EXIT_REGRESSION
        assert result.points[0].checksum_drift

    def test_different_workloads_not_comparable(self):
        result = compare_trajectories(
            trajectory_with(1.0, name="toy"),
            trajectory_with(1.0, name="consensus"),
        )
        assert result.exit_code == EXIT_NOT_COMPARABLE

    def test_no_overlapping_cells_not_comparable(self):
        baseline = trajectory_with(1.0)
        baseline.points[0] = replace(baseline.points[0], tier="paper")
        result = compare_trajectories(baseline, trajectory_with(1.0))
        assert result.exit_code == EXIT_NOT_COMPARABLE

    def test_changed_item_count_not_comparable(self):
        result = compare_trajectories(
            trajectory_with(1.0, items=64), trajectory_with(1.0, items=128)
        )
        assert result.exit_code == EXIT_NOT_COMPARABLE
        assert any("changed size" in message for message in result.messages)

    def test_latest_cell_run_speaks(self):
        baseline = trajectory_with(1.0)
        current = trajectory_with(9.0)
        current.points.append(trajectory_with(1.05).points[0])  # newest wins
        assert compare_trajectories(baseline, current).exit_code == EXIT_OK


class TestMixedTierTrajectories:
    """A paper-tier point diffed against a small-tier baseline is a harness
    verdict (exit 2), never a phantom regression (exit 1) and never green."""

    def test_disjoint_tiers_exit_not_comparable(self):
        baseline = trajectory_with(0.1)  # smoke-tier cell only
        current = trajectory_with(9.0, items=5_000)
        current.points[0] = replace(current.points[0], tier="paper")
        result = compare_trajectories(baseline, current)
        assert result.exit_code == EXIT_NOT_COMPARABLE
        assert not result.points  # no cell was (mis)compared across tiers

    def test_unmatched_current_cell_blocks_green(self):
        # Shared smoke cell is fine, but the current run also carries a
        # paper point the baseline cannot vouch for: the small cells must
        # not paint the whole run green.
        baseline = trajectory_with(1.0)
        current = trajectory_with(1.0)
        current.points.append(
            replace(trajectory_with(9.0, items=5_000).points[0], tier="paper")
        )
        result = compare_trajectories(baseline, current)
        assert result.exit_code == EXIT_NOT_COMPARABLE
        assert len(result.points) == 1  # the shared cell was still judged
        assert not result.points[0].regressed
        assert any("no baseline" in message for message in result.messages)

    def test_baseline_only_cells_stay_green(self):
        # The committed baseline legitimately carries history (paper
        # points) that a small-tier CI run does not revisit.
        baseline = trajectory_with(1.0)
        baseline.points.append(
            replace(trajectory_with(9.0, items=5_000).points[0], tier="paper")
        )
        assert compare_trajectories(baseline, trajectory_with(1.0)).exit_code == EXIT_OK

    def test_regression_outranks_mixed_tiers(self):
        baseline = trajectory_with(1.0)
        current = trajectory_with(5.0)  # real regression in the shared cell
        current.points.append(
            replace(trajectory_with(9.0, items=5_000).points[0], tier="paper")
        )
        assert (
            compare_trajectories(baseline, current).exit_code == EXIT_REGRESSION
        )

    def test_items_changed_cell_blocks_green_despite_ok_sibling(self):
        baseline = Trajectory(
            name="toy",
            points=[
                trajectory_with(1.0, items=64).points[0],
                replace(trajectory_with(1.0, items=64).points[0], kernel="scalar"),
            ],
        )
        current = Trajectory(
            name="toy",
            points=[
                trajectory_with(1.0, items=64).points[0],
                replace(trajectory_with(1.0, items=128).points[0], kernel="scalar"),
            ],
        )
        result = compare_trajectories(baseline, current)
        assert result.exit_code == EXIT_NOT_COMPARABLE
        assert any("changed size" in message for message in result.messages)


class TestCompareWithin:
    def test_two_runs_of_one_cell(self):
        trajectory = trajectory_with(1.0)
        trajectory.points.append(trajectory_with(2.0).points[0])
        assert compare_within(trajectory).exit_code == EXIT_REGRESSION
        trajectory.points[-1] = trajectory_with(1.01).points[0]
        assert compare_within(trajectory).exit_code == EXIT_OK

    def test_single_run_not_comparable(self):
        assert compare_within(trajectory_with(1.0)).exit_code == EXIT_NOT_COMPARABLE

    def test_empty_not_comparable(self):
        assert (
            compare_within(Trajectory(name="toy")).exit_code == EXIT_NOT_COMPARABLE
        )


class TestCompareCli:
    def _write(self, directory, trajectory):
        directory.mkdir(parents=True, exist_ok=True)
        path = trajectory_path(trajectory.name, directory)
        write_trajectory(path, trajectory)
        return path

    def test_ok_exit(self, tmp_path, capsys):
        base = self._write(tmp_path / "base", trajectory_with(1.0))
        cur = self._write(tmp_path / "cur", trajectory_with(0.9))
        assert main(["bench", "compare", str(base), str(cur)]) == EXIT_OK
        assert "ok" in capsys.readouterr().out

    def test_regression_exit(self, tmp_path, capsys):
        base = self._write(tmp_path / "base", trajectory_with(1.0))
        cur = self._write(tmp_path / "cur", trajectory_with(2.0))
        assert main(["bench", "compare", str(base), str(cur)]) == EXIT_REGRESSION
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_baseline_exit(self, tmp_path, capsys):
        cur = self._write(tmp_path / "cur", trajectory_with(1.0))
        missing = tmp_path / "base" / "BENCH_toy.json"
        assert (
            main(["bench", "compare", str(missing), str(cur)])
            == EXIT_NOT_COMPARABLE
        )
        assert "not comparable" in capsys.readouterr().out

    def test_schema_mismatch_exit(self, tmp_path, capsys):
        base = self._write(tmp_path / "base", trajectory_with(1.0))
        cur = self._write(tmp_path / "cur", trajectory_with(1.0))
        data = json.loads(cur.read_text(encoding="utf-8"))
        data["schema"] = 999
        cur.write_text(json.dumps(data), encoding="utf-8")
        assert (
            main(["bench", "compare", str(base), str(cur)])
            == EXIT_NOT_COMPARABLE
        )
        assert "schema version" in capsys.readouterr().out

    def test_report_only_never_fails(self, tmp_path, capsys):
        base = self._write(tmp_path / "base", trajectory_with(1.0))
        cur = self._write(tmp_path / "cur", trajectory_with(5.0))
        assert (
            main(["bench", "compare", str(base), str(cur), "--report-only"])
            == EXIT_OK
        )
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "report-only" in out

    def test_directory_mode(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        base_dir.mkdir()
        cur_dir.mkdir()
        self._write(base_dir, trajectory_with(1.0, name="toy"))
        self._write(cur_dir, trajectory_with(1.05, name="toy"))
        assert (
            main(["bench", "compare", str(base_dir), str(cur_dir)]) == EXIT_OK
        )
