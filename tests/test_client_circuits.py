"""Tests for repro.client.circuits."""

import pytest

from repro.client.circuits import Circuit, CircuitBuilder
from repro.client.guards import GuardSet
from repro.errors import SimulationError
from repro.relay.flags import RelayFlags
from repro.sim.rng import derive_rng


def make_builder(network, seed=1):
    guards = GuardSet(derive_rng(seed, "g"))
    guards.refresh(network.consensus, network.clock.now)
    return CircuitBuilder(guards, derive_rng(seed, "b")), guards


class TestCircuit:
    def test_guard_and_last_hop(self):
        circuit = Circuit(hops=(b"\x01" * 20, b"\x02" * 20, b"\x03" * 20))
        assert circuit.guard == b"\x01" * 20
        assert circuit.last_hop == b"\x03" * 20
        assert len(circuit) == 3

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            Circuit(hops=())

    def test_relay_reuse_rejected(self):
        with pytest.raises(SimulationError):
            Circuit(hops=(b"\x01" * 20, b"\x01" * 20))


class TestCircuitBuilder:
    def test_three_hops_by_default(self, network):
        builder, _ = make_builder(network)
        circuit = builder.build(network.consensus)
        assert len(circuit) == 3

    def test_first_hop_is_pinned_guard(self, network):
        builder, guards = make_builder(network)
        for _ in range(10):
            circuit = builder.build(network.consensus)
            assert circuit.guard in guards.fingerprints

    def test_no_repeated_relays(self, network):
        builder, _ = make_builder(network)
        for _ in range(20):
            circuit = builder.build(network.consensus)
            assert len(set(circuit.hops)) == len(circuit.hops)

    def test_final_hop_pinned(self, network):
        builder, guards = make_builder(network)
        target = next(
            entry.fingerprint
            for entry in network.consensus.entries
            if entry.fingerprint not in guards.fingerprints
        )
        circuit = builder.build(network.consensus, final_hop=target)
        assert circuit.last_hop == target
        assert len(circuit) == 3

    def test_exclusions_respected(self, network):
        builder, _ = make_builder(network)
        taboo = network.consensus.entries[0].fingerprint
        for _ in range(15):
            circuit = builder.build(network.consensus, exclude=[taboo])
            assert taboo not in circuit.hops

    def test_middle_hops_prefer_fast_relays(self, network):
        builder, guards = make_builder(network)
        fast = {
            entry.fingerprint
            for entry in network.consensus.with_flag(RelayFlags.FAST)
        }
        hits = 0
        for _ in range(30):
            circuit = builder.build(network.consensus)
            hits += circuit.hops[1] in fast
        assert hits >= 25  # overwhelmingly Fast

    def test_empty_guard_set_rejected(self, network):
        builder = CircuitBuilder(GuardSet(derive_rng(9, "g")), derive_rng(9, "b"))
        with pytest.raises(SimulationError):
            builder.build(network.consensus)

    def test_zero_length_rejected(self, network):
        builder, _ = make_builder(network)
        with pytest.raises(SimulationError):
            builder.build(network.consensus, length=0)

    def test_counter(self, network):
        builder, _ = make_builder(network)
        builder.build(network.consensus)
        builder.build(network.consensus)
        assert builder.circuits_built == 2
