"""Tests for repro.hs.service."""

import random

from repro.crypto.keys import KeyPair
from repro.crypto.onion import onion_address_from_key
from repro.hs.service import HiddenService
from repro.sim.clock import DAY, parse_date

FEB4 = parse_date("2013-02-04")


def make_service(seed=1, **kwargs):
    return HiddenService(keypair=KeyPair.generate(random.Random(seed)), **kwargs)


class TestIdentity:
    def test_onion_derives_from_key(self):
        service = make_service()
        assert service.onion == onion_address_from_key(service.keypair.public_der)

    def test_permanent_id_is_ten_bytes(self):
        assert len(make_service().permanent_id) == 10


class TestLifecycle:
    def test_online_window(self):
        service = make_service(online_from=100, online_until=200)
        assert not service.is_online(99)
        assert service.is_online(150)
        assert not service.is_online(200)

    def test_forever_online(self):
        assert make_service(online_from=0).is_online(10**10)

    def test_next_publish_is_future_period_boundary(self):
        service = make_service()
        nxt = service.next_publish_after(FEB4)
        assert FEB4 < nxt <= FEB4 + DAY

    def test_descriptor_rotation_at_boundary(self):
        service = make_service()
        boundary = service.next_publish_after(FEB4)
        before = service.current_descriptors(boundary - 1)
        after = service.current_descriptors(boundary)
        assert {d.descriptor_id for d in before}.isdisjoint(
            {d.descriptor_id for d in after}
        )

    def test_descriptors_stable_within_period(self):
        service = make_service()
        boundary = service.next_publish_after(FEB4)
        a = service.current_descriptors(FEB4)
        b = service.current_descriptors(boundary - 1)
        assert [d.descriptor_id for d in a] == [d.descriptor_id for d in b]

    def test_publish_count_starts_zero(self):
        assert make_service().publish_count == 0
