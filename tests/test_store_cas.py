"""Tests for repro.store.cas — the content-addressed object layer."""

import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.store.cas import (
    ContentStore,
    atomic_write_bytes,
    canonical_json_bytes,
    digest_of,
)


class TestCanonicalEncoding:
    def test_key_order_never_matters(self):
        a = {"b": 1, "a": {"y": 2, "x": 3}}
        b = {"a": {"x": 3, "y": 2}, "b": 1}
        assert canonical_json_bytes(a) == canonical_json_bytes(b)
        assert digest_of(a) == digest_of(b)

    def test_encoding_is_minimal(self):
        assert canonical_json_bytes({"a": [1, 2]}) == b'{"a":[1,2]}'

    def test_nan_rejected(self):
        with pytest.raises(StoreError, match="not canonically serialisable"):
            canonical_json_bytes({"x": float("nan")})

    def test_non_json_payload_rejected(self):
        with pytest.raises(StoreError, match="not canonically serialisable"):
            canonical_json_bytes({"x": object()})

    def test_value_change_changes_digest(self):
        assert digest_of({"a": 1}) != digest_of({"a": 2})


class TestContentStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ContentStore(tmp_path)
        payload = {"stage": "scan", "artifact": {"n": 3}}
        digest = store.put(payload)
        assert store.has(digest)
        assert store.get(digest) == payload
        assert store.size_of(digest) > 0

    def test_put_is_idempotent(self, tmp_path):
        store = ContentStore(tmp_path)
        first = store.put({"a": 1})
        second = store.put({"a": 1})
        assert first == second
        assert list(store.iter_digests()) == [first]

    def test_layout_fans_out_by_prefix(self, tmp_path):
        store = ContentStore(tmp_path)
        digest = store.put({"a": 1})
        path = store.path_of(digest)
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.json"

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ContentStore(tmp_path)
        store.put({"a": 1})
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_get_missing_raises_store_error(self, tmp_path):
        store = ContentStore(tmp_path)
        with pytest.raises(StoreError, match="no object"):
            store.get("0" * 64)

    def test_bad_digest_rejected(self, tmp_path):
        store = ContentStore(tmp_path)
        with pytest.raises(StoreError, match="not a SHA-256"):
            store.path_of("../../etc/passwd")

    def test_tampered_bytes_detected(self, tmp_path):
        store = ContentStore(tmp_path)
        digest = store.put({"a": 1})
        path = store.path_of(digest)
        path.write_bytes(path.read_bytes().replace(b"1", b"2"))
        with pytest.raises(StoreCorruptionError, match="corrupt"):
            store.get(digest)
        assert not store.verify(digest)

    def test_truncated_object_detected(self, tmp_path):
        store = ContentStore(tmp_path)
        digest = store.put({"a": [1, 2, 3]})
        path = store.path_of(digest)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(StoreCorruptionError):
            store.get(digest)

    def test_intact_object_verifies(self, tmp_path):
        store = ContentStore(tmp_path)
        assert store.verify(store.put({"a": 1}))

    def test_delete(self, tmp_path):
        store = ContentStore(tmp_path)
        digest = store.put({"a": 1})
        assert store.delete(digest) is True
        assert store.delete(digest) is False
        assert not store.has(digest)

    def test_iter_digests_sorted(self, tmp_path):
        store = ContentStore(tmp_path)
        digests = {store.put({"n": n}) for n in range(6)}
        assert list(store.iter_digests()) == sorted(digests)


class TestAtomicWrite:
    def test_write_then_replace(self, tmp_path):
        target = tmp_path / "deep" / "file.json"
        atomic_write_bytes(target, b"{}")
        assert target.read_bytes() == b"{}"
        atomic_write_bytes(target, b'{"a":1}')
        assert target.read_bytes() == b'{"a":1}'
        assert list(tmp_path.rglob("*.tmp")) == []
