"""Tests for repro.sim.rng — stream derivation determinism/independence."""

from hypothesis import given, strategies as st

from repro.sim.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_different_seeds_differ(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_different_paths_differ(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_path_elements_are_not_concatenated(self):
        # ("ab",) and ("a", "b") must be distinct streams.
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_empty_path_ok(self):
        assert isinstance(derive_seed(7), int)

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_seed_fits_64_bits(self, seed, path):
        assert 0 <= derive_seed(seed, path) < 2**64


class TestDeriveRng:
    def test_same_stream_same_draws(self):
        a = derive_rng(1, "x")
        b = derive_rng(1, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_sibling_streams_are_independent(self):
        a = derive_rng(1, "x")
        b = derive_rng(1, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_consuming_one_stream_does_not_affect_sibling(self):
        first = derive_rng(1, "x")
        _ = [first.random() for _ in range(100)]
        fresh = derive_rng(1, "y")
        expected = derive_rng(1, "y")
        assert fresh.random() == expected.random()
