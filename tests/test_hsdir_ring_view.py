"""Tests for repro.hsdir.ring_view — responsible directory computation."""

from repro.crypto.descriptor_id import REPLICAS
from repro.crypto.onion import onion_address_from_key
from repro.hsdir.ring_view import responsible_for_replica, responsible_hsdirs
from repro.relay.flags import RelayFlags
from repro.sim.clock import DAY, parse_date

ONION = onion_address_from_key(b"a-service")
FEB4 = parse_date("2013-02-04")


class TestResponsibleHsdirs:
    def test_six_directories_total(self, network):
        result = responsible_hsdirs(network.consensus, ONION, FEB4)
        assert len(result) == REPLICAS * 3

    def test_replicas_usually_disjoint(self, network):
        a = responsible_for_replica(network.consensus, ONION, FEB4, 0)
        b = responsible_for_replica(network.consensus, ONION, FEB4, 1)
        # With 100+ HSDirs the two replica sets colliding is ~impossible.
        assert not (set(a) & set(b))

    def test_all_carry_hsdir_flag(self, network):
        for fp in responsible_hsdirs(network.consensus, ONION, FEB4):
            entry = network.consensus.entry_for(fp)
            assert entry is not None
            assert entry.has(RelayFlags.HSDIR)

    def test_deterministic(self, network):
        assert responsible_hsdirs(network.consensus, ONION, FEB4) == responsible_hsdirs(
            network.consensus, ONION, FEB4
        )

    def test_changes_across_periods(self, network):
        today = responsible_hsdirs(network.consensus, ONION, FEB4)
        tomorrow = responsible_hsdirs(network.consensus, ONION, FEB4 + DAY)
        assert today != tomorrow

    def test_different_onions_different_directories(self, network):
        other = onion_address_from_key(b"other-service")
        assert responsible_hsdirs(
            network.consensus, ONION, FEB4
        ) != responsible_hsdirs(network.consensus, other, FEB4)

    def test_count_parameter(self, network):
        result = responsible_for_replica(network.consensus, ONION, FEB4, 0, count=5)
        assert len(result) == 5
