"""Tests for repro.client.guards."""

import pytest

from repro.client.guards import (
    GUARD_LIFETIME_MAX,
    GUARD_LIFETIME_MIN,
    GUARD_SET_SIZE,
    GuardSet,
)
from repro.errors import SimulationError
from repro.relay.flags import RelayFlags
from repro.sim.rng import derive_rng


class TestRefresh:
    def test_fills_to_three(self, network):
        guards = GuardSet(derive_rng(1, "g"))
        guards.refresh(network.consensus, network.clock.now)
        assert len(guards.fingerprints) == GUARD_SET_SIZE

    def test_only_guard_flagged_relays(self, network):
        guards = GuardSet(derive_rng(1, "g"))
        guards.refresh(network.consensus, network.clock.now)
        for fp in guards.fingerprints:
            assert network.consensus.entry_for(fp).has(RelayFlags.GUARD)

    def test_no_duplicates(self, network):
        guards = GuardSet(derive_rng(2, "g"))
        guards.refresh(network.consensus, network.clock.now)
        assert len(set(guards.fingerprints)) == len(guards.fingerprints)

    def test_stable_across_refreshes(self, network):
        guards = GuardSet(derive_rng(3, "g"))
        guards.refresh(network.consensus, network.clock.now)
        before = list(guards.fingerprints)
        guards.refresh(network.consensus, network.clock.now + 3600)
        assert guards.fingerprints == before

    def test_expired_guard_replaced(self, network):
        guards = GuardSet(derive_rng(4, "g"))
        now = network.clock.now
        guards.refresh(network.consensus, now)
        before = set(guards.fingerprints)
        guards.refresh(network.consensus, now + GUARD_LIFETIME_MAX + 1)
        after = set(guards.fingerprints)
        assert before.isdisjoint(after) or before != after
        assert len(after) == GUARD_SET_SIZE

    def test_not_expired_within_minimum(self, network):
        guards = GuardSet(derive_rng(5, "g"))
        now = network.clock.now
        guards.refresh(network.consensus, now)
        before = list(guards.fingerprints)
        guards.refresh(network.consensus, now + GUARD_LIFETIME_MIN - 1)
        assert guards.fingerprints == before

    def test_vanished_guard_replaced(self, network):
        guards = GuardSet(derive_rng(6, "g"))
        now = network.clock.now
        guards.refresh(network.consensus, now)
        victim_fp = guards.fingerprints[0]
        victim = network.relay_for_fingerprint(victim_fp)
        victim.set_reachable(False, now)
        network.clock.advance_by(3600)
        consensus = network.rebuild_consensus()
        guards.refresh(consensus, network.clock.now)
        assert victim_fp not in guards.fingerprints
        assert len(guards.fingerprints) == GUARD_SET_SIZE


class TestPick:
    def test_pick_from_set(self, network):
        guards = GuardSet(derive_rng(7, "g"))
        guards.refresh(network.consensus, network.clock.now)
        for _ in range(20):
            assert guards.pick() in guards.fingerprints

    def test_pick_empty_raises(self):
        with pytest.raises(SimulationError):
            GuardSet(derive_rng(8, "g")).pick()

    def test_bandwidth_weighting(self, network):
        """High-bandwidth guards should be selected more often across many
        independent clients — the property the deanon attack's economics
        rest on."""
        entries = network.consensus.with_flag(RelayFlags.GUARD)
        top = max(entries, key=lambda e: e.bandwidth)
        bottom = min(entries, key=lambda e: e.bandwidth)
        top_count = bottom_count = 0
        for i in range(400):
            guards = GuardSet(derive_rng(9, "g", str(i)))
            guards.refresh(network.consensus, network.clock.now)
            top_count += top.fingerprint in guards.fingerprints
            bottom_count += bottom.fingerprint in guards.fingerprints
        assert top_count > bottom_count
