"""Tests for repro.population.spec — calibration arithmetic."""

import dataclasses

import pytest

from repro.errors import PopulationError
from repro.population.spec import (
    NAMED_SERVICE_RATES,
    TOPIC_SHARES,
    PopulationSpec,
)


class TestFullScaleSpec:
    def setup_method(self):
        self.spec = PopulationSpec()

    def test_total_onions_is_papers(self):
        assert self.spec.total_onions == 39_824

    def test_alive_plus_dead_is_total(self):
        assert (
            self.spec.alive_at_scan_count + self.spec.dead_by_scan_count
            == self.spec.total_onions
        )

    def test_no_port_residual_nonnegative(self):
        assert self.spec.no_port_count >= 0

    def test_goldnet_split_consistent(self):
        assert sum(self.spec.goldnet_server_split) == self.spec.goldnet_front_count

    def test_skynet_majority_of_alive(self):
        # Section III: port 55080 open on more than 50% of live onions.
        assert self.spec.skynet_bot_count / self.spec.alive_at_scan_count > 0.5

    def test_real_content_count(self):
        assert self.spec.real_content_count == (
            self.spec.torhost_content_count
            + self.spec.deanon_cert_count
            + self.spec.dual_mismatch_cert_count
            + self.spec.dual_matching_cert_count
            + self.spec.https_only_count
            + self.spec.http_content_count
        )

    def test_topic_shares_sum_to_100(self):
        assert sum(TOPIC_SHARES.values()) == 100

    def test_topic_shares_cover_18_categories(self):
        assert len(TOPIC_SHARES) == 18

    def test_named_rates_are_descending_in_the_head(self):
        rates = [rate for _, rate in NAMED_SERVICE_RATES[:9]]
        assert rates == sorted(rates, reverse=True)

    def test_named_rates_match_paper_anchors(self):
        rates = dict(NAMED_SERVICE_RATES)
        assert rates["goldnet-1"] == 13_714
        assert rates["silkroad"] == 1_175
        assert rates["duckduckgo"] == 55


class TestValidation:
    def test_bad_english_fraction(self):
        with pytest.raises(PopulationError):
            PopulationSpec(english_fraction=1.5)

    def test_bad_probability(self):
        with pytest.raises(PopulationError):
            PopulationSpec(web_crawl_survival=-0.1)

    def test_split_mismatch(self):
        with pytest.raises(PopulationError):
            PopulationSpec(goldnet_server_split=(1, 1))

    def test_overcommitted_quotas(self):
        spec = PopulationSpec(skynet_bot_count=40_000)
        with pytest.raises(PopulationError):
            spec.no_port_count


class TestScaling:
    def test_scale_one_is_identity(self):
        spec = PopulationSpec()
        assert spec.scaled(1.0) is spec

    def test_scale_shrinks_proportionally(self):
        spec = PopulationSpec().scaled(0.1)
        assert spec.skynet_bot_count == pytest.approx(1_590, rel=0.01)
        assert spec.alive_at_scan_count + spec.dead_by_scan_count == spec.total_onions

    def test_scale_keeps_groups_nondegenerate(self):
        spec = PopulationSpec().scaled(0.01)
        assert spec.goldnet_front_count >= 2
        assert spec.deanon_cert_count >= 2
        assert sum(spec.goldnet_server_split) == spec.goldnet_front_count

    def test_scaled_rates_preserve_order(self):
        spec = PopulationSpec().scaled(0.05)
        rates = [rate for _, rate in spec.named_rates[:9]]
        assert rates == sorted(rates, reverse=True)

    def test_invalid_scale(self):
        with pytest.raises(PopulationError):
            PopulationSpec().scaled(0)

    def test_scaled_residual_consistent(self):
        spec = PopulationSpec().scaled(0.2)
        assert spec.no_port_count >= 0

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PopulationSpec().total_onions = 5  # type: ignore[misc]
