"""Tests for repro.net.geoip."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.geoip import COUNTRY_WEIGHTS, GeoIP


class TestGeoIP:
    def setup_method(self):
        self.geoip = GeoIP(seed=0)

    def test_lookup_inverts_random_ip(self):
        rng = random.Random(1)
        for _ in range(200):
            country = self.geoip.random_country(rng)
            ip = self.geoip.random_ip(rng, country)
            assert self.geoip.lookup(ip) == country

    def test_every_country_has_blocks(self):
        rng = random.Random(2)
        for country in self.geoip.countries:
            ip = self.geoip.random_ip(rng, country)
            assert self.geoip.lookup(ip) == country

    def test_unknown_country_rejected(self):
        with pytest.raises(NetworkError):
            self.geoip.random_ip(random.Random(0), "XX")

    def test_unassigned_space_maps_to_unknown(self):
        # 127.* is never assigned.
        assert self.geoip.lookup(127 << 24) == "??"

    def test_invalid_ip_rejected(self):
        with pytest.raises(NetworkError):
            self.geoip.lookup(1 << 32)

    def test_deterministic_per_seed(self):
        a, b = GeoIP(seed=3), GeoIP(seed=3)
        for block in range(1, 224):
            assert a.lookup(block << 24) == b.lookup(block << 24)

    def test_weighting_shapes_country_draws(self):
        rng = random.Random(4)
        counts = {}
        for _ in range(5000):
            country = self.geoip.random_country(rng)
            counts[country] = counts.get(country, 0) + 1
        # US has the largest weight; it must beat a small-weight country.
        assert counts.get("US", 0) > counts.get("NG", 0)

    def test_custom_weights(self):
        geoip = GeoIP(seed=0, weights={"AA": 1.0, "BB": 1.0})
        assert sorted(geoip.countries) == ["AA", "BB"]

    def test_empty_weights_rejected(self):
        with pytest.raises(NetworkError):
            GeoIP(seed=0, weights={})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(NetworkError):
            GeoIP(seed=0, weights={"AA": 0.0})

    def test_default_weights_cover_many_countries(self):
        assert len(COUNTRY_WEIGHTS) >= 30

    def test_every_country_owns_at_least_one_block(self):
        # Direct structural check (not via random_ip): the proportional
        # allocation must never exhaust the cursor before every country got
        # its guaranteed block.
        assert all(
            self.geoip._country_to_blocks[country]
            for country in self.geoip.countries
        )

    def test_block_totals_are_conserved(self):
        from repro.net.geoip import _UNICAST_FIRST_OCTETS

        assigned = sum(
            len(blocks) for blocks in self.geoip._country_to_blocks.values()
        )
        assert assigned == len(_UNICAST_FIRST_OCTETS)
        assert len(self.geoip._block_to_country) == len(_UNICAST_FIRST_OCTETS)

    def test_many_countries_each_get_a_block(self):
        # Regression: with many heavy-weight countries, per-country
        # max(1, round(...)) over-allocated alphabetically early countries
        # and exhausted the /8 cursor, leaving later countries empty (so
        # random_ip raised for a country the database claims to know).
        weights = {f"C{i:03d}": 10.0 for i in range(150)}
        weights["ZZ"] = 0.001  # alphabetically last, nearly zero weight
        geoip = GeoIP(seed=1, weights=weights)
        rng = random.Random(7)
        for country in geoip.countries:
            assert geoip.lookup(geoip.random_ip(rng, country)) == country

    def test_heavy_weight_still_dominates_allocation(self):
        geoip = GeoIP(seed=0)
        blocks_of = {
            country: len(blocks)
            for country, blocks in geoip._country_to_blocks.items()
        }
        assert blocks_of["US"] > blocks_of["NG"]

    def test_more_countries_than_blocks_rejected(self):
        weights = {f"C{i:04d}": 1.0 for i in range(300)}
        with pytest.raises(NetworkError):
            GeoIP(seed=0, weights=weights)
