#!/usr/bin/env python3
"""Quickstart: stand up a small simulated Tor network, publish a hidden
service, and fetch its descriptor as a client.

Walks the v2 hidden-service mechanics the paper's measurements exploit:
onion addresses derived from key digests, daily-rotating descriptor IDs,
the HSDir fingerprint ring, and the six responsible directories.

Run:  python examples/quickstart.py
"""

from repro import (
    HiddenService,
    KeyPair,
    Relay,
    TorClient,
    TorNetwork,
    derive_rng,
    parse_date,
)
from repro.crypto import descriptor_ids_for_day
from repro.net.address import AddressPool
from repro.sim import DAY, SimClock, format_date

SEED = 7
START = parse_date("2013-02-04")  # the paper's harvest date


def main() -> None:
    rng = derive_rng(SEED, "quickstart")
    pool = AddressPool(derive_rng(SEED, "ips"))

    # --- a small Tor network -------------------------------------------- #
    network = TorNetwork(clock=SimClock(START))
    for index in range(200):
        network.add_relay(
            Relay(
                nickname=f"relay{index:03d}",
                ip=pool.allocate(),
                or_port=9001,
                keypair=KeyPair.generate(rng),
                bandwidth=rng.randint(100, 5000),
                started_at=START - rng.randint(5, 400) * DAY,
            )
        )
    consensus = network.rebuild_consensus(START)
    print(f"network : {len(consensus)} relays, {consensus.hsdir_count} HSDirs")

    # --- a hidden service ------------------------------------------------- #
    service = HiddenService(keypair=KeyPair.generate(rng), online_from=0)
    print(f"service : {service.onion}")

    for replica, desc_id in enumerate(descriptor_ids_for_day(service.onion, START)):
        print(f"  replica {replica} descriptor id: {desc_id.hex()}")
    responsible = network.responsible_set(service.onion)
    print(f"  responsible HSDirs: {len(responsible)}")
    for fingerprint in sorted(responsible):
        entry = network.consensus.entry_for(fingerprint)
        print(f"    {fingerprint.hex()[:16]}…  {entry.nickname}")

    delivered = network.publish_service(service)
    print(f"published to {delivered} directories")

    # --- a client fetch ----------------------------------------------------- #
    client = TorClient(ip=0x08080808, rng=derive_rng(SEED, "client"))
    client.refresh_guards(network)
    stored = client.fetch_onion(network, service.onion)
    assert stored is not None
    print(f"client fetched descriptor, key digest matches: "
          f"{stored.public_der == service.keypair.public_der}")

    # --- rotation: tomorrow the IDs (and directories) move ------------------- #
    network.clock.advance_by(DAY)
    network.rebuild_consensus()
    stale = client.fetch_onion(network, service.onion)
    print(f"{format_date(network.clock.now)}: fetch without republish -> "
          f"{'hit' if stale else 'miss (descriptor rotated)'}")
    network.publish_service(service)
    fresh = client.fetch_onion(network, service.onion)
    print(f"after republish -> {'hit' if fresh else 'miss'}")


if __name__ == "__main__":
    main()
