#!/usr/bin/env python3
"""Opportunistically deanonymise clients of a popular hidden service
(the Section VI / Fig 3 pipeline).

The attacker holds the target's responsible HSDirs (keys ground next to the
predictable descriptor IDs) and a slice of guard capacity; descriptor
responses are wrapped in a traffic signature that the attacker's guards
recognise, revealing client IPs.  The captured IPs are resolved to a
country-level map.

Run:  python examples/deanonymize_clients.py
"""

from repro.experiments import run_fig3

SEED = 13


def main() -> None:
    result = run_fig3(
        seed=SEED,
        honest_relays=500,
        attacker_guards=14,
        client_count=2500,
        observation_days=2,
        fetches_per_client_per_day=3.0,
    )

    print(f"attacker guard-bandwidth share : {result.attacker_guard_share:.2%}")
    print(f"signatures injected            : {result.signatures_injected}")
    print(f"clients captured               : {result.captures} fetches, "
          f"{result.unique_clients} unique IPs")
    print(f"capture rate                   : {result.capture_rate:.2%} "
          f"(≈ the guard share — the attack is opportunistic)")

    print("\nClient geography of the target service (Fig 3):")
    print(result.format_map())

    print("\nInterpretation (Section VI): a Silk Road *seller* logs in "
          "periodically and would appear here with a recurring IP; catching "
          "even a few such patterns is what the paper warns about.")


if __name__ == "__main__":
    main()
