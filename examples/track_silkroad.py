#!/usr/bin/env python3
"""Detect who tracked Silk Road (the Section VII pipeline).

Builds a 33-month consensus history (reduced honest-relay scale) with the
three tracking episodes the paper found injected, then runs the five-rule
analyzer year by year — without access to the injection ground truth — and
prints what it convicts.

Run:  python examples/track_silkroad.py
"""

from repro import SilkroadStudy, SilkroadStudyConfig, TrackingAnalyzer, parse_date

SEED = 3
SCALE = 0.3  # honest-relay population scale (full = 757 → 1,862 HSDirs)

YEARS = (
    ("year 1", "2011-02-01", "2011-12-31"),
    ("year 2", "2012-01-01", "2012-12-31"),
    ("year 3", "2013-01-01", "2013-10-31"),
)


def main() -> None:
    print("building 33 months of consensus history…")
    world = SilkroadStudy(SilkroadStudyConfig(scale=SCALE, seed=SEED)).build()
    print(f"  {len(world.archive)} consensuses, target {world.silkroad_onion}")

    analyzer = TrackingAnalyzer(world.archive)
    for label, start, end in YEARS:
        report = analyzer.analyze(
            world.silkroad_onion, parse_date(start), parse_date(end)
        )
        print(f"\n== {label} ==  ({report.periods_analyzed} periods, "
              f"mean ring size {report.mean_hsdir_count:.0f}, "
              f"frequency threshold μ+3σ = {report.frequency_threshold:.1f})")
        likely = report.likely_trackers()
        if not likely:
            print("  no likely trackers (fingerprint+distance criterion)")
        for server, flags in sorted(likely.items()):
            record = report.servers[server]
            print(f"  CONVICTED {sorted(record.nicknames)}  flags={flags}")
            print(f"    periods responsible: {record.periods_responsible}, "
                  f"max ratio: {record.max_ratio:,.0f}, "
                  f"fresh-fingerprint events: {record.fresh_fingerprint_events}")
        for period_start, servers in report.full_takeovers():
            names = set()
            for server in servers:
                names |= report.servers[server].nicknames
            from repro.sim.clock import format_date

            print(f"  FULL TAKEOVER on {format_date(period_start)}: "
                  f"all six responsible slots held by {sorted(names)}")

    print("\nground truth (not used by the analyzer):")
    for entity, servers in sorted(world.ground_truth.items()):
        print(f"  {entity}: {len(servers)} server(s)")


if __name__ == "__main__":
    main()
