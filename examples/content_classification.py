#!/usr/bin/env python3
"""Crawl scanned destinations and classify their content (the Fig 2 pipeline).

Runs the scan → crawl → exclusion-funnel → language-detection →
topic-classification chain at 8% scale and compares the recovered topic
distribution against the ground truth the generator planted.

Run:  python examples/content_classification.py
"""

from repro.analysis.stats import l1_distance, share_table
from repro.analysis.tables import format_bar_chart
from repro.experiments.pipeline import MeasurementPipeline
from repro.population.corpus import LANGUAGE_DISPLAY_NAMES, TOPIC_DISPLAY_NAMES
from repro.population.spec import TOPIC_SHARES

SEED = 5
SCALE = 0.08


def main() -> None:
    pipeline = MeasurementPipeline(seed=SEED, scale=SCALE)

    crawl = pipeline.crawl()
    print(f"crawl   : {crawl.tried} destinations tried, "
          f"{crawl.open_at_crawl} open, {crawl.connected} connectable")

    funnel = pipeline.classifiable()
    print(f"funnel  : {funnel.short_excluded} short "
          f"(of which {funnel.ssh_banner_excluded} SSH banners), "
          f"{funnel.duplicate_443_excluded} duplicate :443 copies, "
          f"{funnel.error_page_excluded} error pages "
          f"-> {funnel.classified_count} classified")

    outcome = pipeline.classify()
    print(f"language: {outcome.english_fraction:.0%} English, "
          f"{len(outcome.language_counts)} languages")
    minor = sorted(
        (count, code)
        for code, count in outcome.language_counts.items()
        if code != "en"
    )[-5:]
    for count, code in reversed(minor):
        print(f"          {LANGUAGE_DISPLAY_NAMES.get(code, code):<12} {count}")

    print(f"\ntorhost default pages: {outcome.torhost_default_count}")
    print(f"topic-classified english pages: {sum(outcome.topic_counts.values())}\n")

    shares = outcome.topic_shares_percent()
    rows = [
        (TOPIC_DISPLAY_NAMES.get(topic, topic), round(share, 1))
        for topic, share in sorted(shares.items(), key=lambda kv: -kv[1])
    ]
    print("Topic distribution (Fig 2):")
    print(format_bar_chart(rows, width=40, unit="%"))

    planted = {topic: value / 100 for topic, value in TOPIC_SHARES.items()}
    measured = share_table(outcome.topic_counts)
    print(f"\nL1 distance to the planted distribution: "
          f"{l1_distance(measured, planted):.3f} "
          f"(sampling noise at this scale)")

    # Classifier accuracy against ground truth for the classified pages.
    population = pipeline.population
    correct = wrong = 0
    for destination, topic in outcome.page_topics.items():
        record = population.record_for(destination[0])
        if record is None or record.topic is None:
            continue
        if record.topic == topic:
            correct += 1
        else:
            wrong += 1
    total = correct + wrong
    print(f"topic classifier accuracy vs planted ground truth: "
          f"{correct}/{total} ({correct / total:.1%})")


if __name__ == "__main__":
    main()
