#!/usr/bin/env python3
"""Harvest onion addresses with the shadow-relay attack, then port-scan them.

The Fig 1 pipeline at 5% of the paper's scale: a ~2,000-onion world, the
58-IP trawl collecting descriptors off the HSDir ring, and the 8-day port
scan that finds the Skynet botnet on port 55080.

Run:  python examples/harvest_and_scan.py
"""

from repro import PortScanner, ScanSchedule, TrawlAttack, TrawlConfig, derive_rng
from repro.hs.publisher import PublishScheduler
from repro.net.address import AddressPool
from repro.net.transport import TorTransport
from repro.population import generate_population
from repro.relay.relay import Relay
from repro.crypto import KeyPair
from repro.scan.tls import analyze_certificates, collect_certificates
from repro.sim import DAY, SimClock
from repro.sim.clock import HOUR
from repro.tornet import TorNetwork
from repro.trawl import naive_ip_requirement

SEED = 11
SCALE = 0.05


def main() -> None:
    population = generate_population(seed=SEED, scale=SCALE)
    print(f"world   : {len(population.records)} hidden services "
          f"({population.spec.skynet_bot_count} Skynet bots)")

    # Honest network + every service publishing.
    start = population.harvest_date - 28 * HOUR
    network = TorNetwork(clock=SimClock(start), keep_archive=False)
    rng = derive_rng(SEED, "honest")
    pool = AddressPool(derive_rng(SEED, "ips"))
    for index in range(120):
        network.add_relay(
            Relay(
                nickname=f"relay{index:03d}", ip=pool.allocate(), or_port=9001,
                keypair=KeyPair.generate(rng), bandwidth=rng.randint(100, 5000),
                started_at=start - rng.randint(5, 400) * DAY,
            )
        )
    network.rebuild_consensus(start)
    publisher = PublishScheduler(network, population.services)
    publisher.publish_initial(start)

    # --- the trawl ------------------------------------------------------- #
    config = TrawlConfig(ip_count=10, relays_per_ip=16, ripen_hours=26, sweep_hours=8)
    attack = TrawlAttack(network, config, derive_rng(SEED, "attack"), pool)
    harvest = attack.run(population.services, publisher)
    print(f"harvest : {len(harvest.onions)} onion addresses from "
          f"{config.ip_count} IPs ({attack.coverage.waves_completed} waves)")
    print(f"          a consensus-limited attacker would need "
          f"~{naive_ip_requirement(network.consensus.hsdir_count)} IPs "
          f"at this ring size")

    # --- the port scan ----------------------------------------------------- #
    transport = TorTransport(
        population.registry,
        derive_rng(SEED, "scan"),
        descriptor_available=population.descriptor_available,
    )
    schedule = ScanSchedule(start=population.scan_start, days=8)
    results = PortScanner(transport).run(sorted(harvest.onions), schedule)

    distribution = results.port_distribution()
    print(f"\nscan    : {len(results.descriptor_onions)} descriptors still "
          f"published, {distribution.total_open} open ports, "
          f"{distribution.unique_ports} distinct port numbers")
    print("\nOpen ports distribution (Fig 1):")
    for label, count in distribution.as_rows():
        print(f"  {label:>16}: {count}")

    # --- HTTPS certificates --------------------------------------------------- #
    https = results.onions_with_port(443)
    certs = collect_certificates(transport, https, schedule.end)
    analysis = analyze_certificates(certs)
    print(f"\nTLS     : {analysis.total_certificates} certificates; "
          f"{analysis.self_signed_mismatch} self-signed CN mismatches "
          f"({analysis.dominant_cn_count} pointing at the TorHost hosting "
          f"service); {analysis.deanonymizable_count} deanonymising "
          f"public-DNS CNs")


if __name__ == "__main__":
    main()
