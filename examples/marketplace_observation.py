#!/usr/bin/env python3
"""Identify marketplace sellers by their visit patterns (§VI application).

"Buyers visit Silk Road occasionally while sellers visit it periodically to
update their product pages and check on orders."  The attacker positions
itself as all six responsible directories of the marketplace (descriptor
IDs are predictable) plus a slice of guard capacity, watches a week of
traffic, and separates the recurring visitors from the one-off ones.

Run:  python examples/marketplace_observation.py
"""

from repro.experiments import run_sec6

SEED = 17


def main() -> None:
    result = run_sec6(
        seed=SEED,
        honest_relays=400,
        attacker_guards=14,
        buyer_count=600,
        seller_count=40,
        observation_days=7,
        seller_visits_per_day=4,
    )
    print(result.report.format())

    ident = result.identification
    print(f"\ncaptured clients : {result.captures} observations")
    print(f"flagged as sellers: {len(ident.identified_sellers)} "
          f"(true positives: {ident.true_positives})")
    print(f"precision         : {ident.precision:.0%}")

    print("\nWhy precision is structural: a buyer visits a couple of times, "
          "so even full capture of their traffic never looks periodic; a "
          "seller checking orders four times a day crosses the "
          "multi-day/multi-visit threshold as soon as one of their three "
          "pinned guards is the attacker's.")
    print("Guards re-roll every 30-60 days, so the capturable share "
          "compounds across rotations (see "
          "benchmarks/bench_ablation_guard_rotation.py).")


if __name__ == "__main__":
    main()
