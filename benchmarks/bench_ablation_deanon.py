"""Ablation: client-capture rate vs attacker guard capacity.

The §VI attack is opportunistic — per fetch, P(capture) equals the
attacker's guard-selection probability.  Sweeping the attacker's guard
count verifies the linear relationship (and hence the cost model of
deanonymising Silk Road sellers)."""

from conftest import save_report

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_rows
from repro.experiments import run_fig3


def run_sweep():
    rows = []
    for guards in (4, 10, 20, 40):
        result = run_fig3(
            seed=9,
            honest_relays=600,
            attacker_guards=guards,
            client_count=2500,
            observation_days=2,
        )
        rows.append(
            (
                guards,
                round(result.attacker_guard_share, 4),
                round(result.capture_rate, 4),
                result.unique_clients,
            )
        )
    return rows


def test_ablation_deanon_guard_share(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(experiment="ablation-deanon")
    for guards, share, rate, clients in rows:
        report.add(f"capture rate @ {guards} guards", share, rate)
    table = format_rows(
        rows, headers=("attacker guards", "guard share", "capture rate", "clients")
    )
    save_report(report_dir, "ablation_deanon", report.format() + "\n\n" + table)

    shares = [share for _, share, _, _ in rows]
    rates = [rate for _, _, rate, _ in rows]
    # More guard capacity → strictly more capture.
    assert rates == sorted(rates)
    # Rate tracks share within 40% relative everywhere.
    for share, rate in zip(shares, rates):
        assert abs(rate - share) < 0.4 * share + 0.01
