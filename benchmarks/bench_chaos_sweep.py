"""Bench: chaos sweep — headline counts vs fault rate, with/without retries."""

from conftest import save_report

from repro.experiments import run_chaos_sweep


def test_chaos_sweep(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: run_chaos_sweep(seed=0, scale=0.02, fault_rates=(0.0, 0.05, 0.2)),
        rounds=1,
        iterations=1,
    )
    text = result.report.format() + "\n\n" + result.format_table()
    save_report(report_dir, "chaos_sweep", text)

    baseline = result.points[0]
    worst = result.points[-1]
    benchmark.extra_info["baseline_open"] = baseline.open_retry
    benchmark.extra_info["worst_rate_open_retry"] = worst.open_retry

    # Shape assertions: faults shrink the counts, retries claw them back.
    assert worst.open_no_retry < baseline.open_no_retry
    assert worst.open_retry > worst.open_no_retry
    assert worst.classified_retry >= worst.classified_no_retry
    assert worst.transient_recovered > 0
