"""Bench: the shadow-relay harvest itself (§§I–II claims).

Run at 25% world scale with the paper's 58 IPs: the harvest must collect
essentially the whole population, while the naive (consensus-limited)
attacker needs ~ring/4 IP addresses.
"""

from conftest import save_report

from repro.experiments import run_harvest


def test_harvest_shadow_relays(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: run_harvest(
            seed=0, scale=0.25, ip_count=58, relays_per_ip=24, sweep_hours=12
        ),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "harvest", result.report.format())

    benchmark.extra_info["onions"] = len(result.harvest.onions)
    benchmark.extra_info["coverage"] = round(result.harvest_fraction, 4)

    assert result.harvest_fraction >= 0.97
    # The flaw's leverage: ~6× fewer IPs than the naive attack at this ring
    # size (paper: 58 vs >300 at the 2013 ring).
    assert result.naive_ips_needed >= result.hsdir_count / 5
    assert 58 < result.naive_ips_needed
