"""Bench: regenerate Fig 3 (client geography of a popular hidden service)."""

from conftest import save_report

from repro.analysis.stats import l1_distance
from repro.experiments import run_fig3


def test_fig3_client_geomap(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: run_fig3(
            seed=0,
            honest_relays=1200,
            attacker_guards=20,
            client_count=6000,
            observation_days=3,
            fetches_per_client_per_day=4.0,
        ),
        rounds=1,
        iterations=1,
    )
    text = result.report.format() + "\n\n" + result.format_map()
    save_report(report_dir, "fig3_geomap", text)

    benchmark.extra_info["unique_clients"] = result.unique_clients
    benchmark.extra_info["capture_rate"] = round(result.capture_rate, 4)

    # The attack is opportunistic: capture rate ≈ attacker guard share.
    assert result.unique_clients > 200
    assert (
        abs(result.capture_rate - result.attacker_guard_share)
        < 0.35 * result.attacker_guard_share
    )
    # The recovered geography matches the true client mix.
    assert l1_distance(result.true_country_shares, result.geomap.shares()) < 0.25
    # Many countries on the map, biggest populations first.
    assert result.geomap.country_count >= 25
