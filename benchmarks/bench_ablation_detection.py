"""Ablation: detection-rule power vs attacker positioning aggressiveness.

Sweeps the tracker's ratio target and counts which rules convict, backing
the paper's conclusion that "changes in fingerprints, in combination with
the distance between the descriptor ID and the fingerprint, seems to be the
most reliable way to detect tracking" — the frequency and consecutive rules
fire on honest relays too, the conjunction does not.
"""

import random

from conftest import save_report

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_rows
from repro.crypto.descriptor_id import descriptor_id
from repro.crypto.keys import KeyPair
from repro.crypto.onion import onion_address_from_key
from repro.crypto.ring import RING_SIZE
from repro.detection.analyzer import TrackingAnalyzer
from repro.dirauth.archive import ConsensusArchive
from repro.dirauth.consensus import Consensus, ConsensusEntry
from repro.relay.flags import RelayFlags
from repro.sim.clock import DAY

TARGET = onion_address_from_key(b"ablation-target")
PERIODS = 200
HONEST = 400


def build_archive(tracker_ratio, seed=0):
    """200 daily periods, honest ring of 400, one tracker striking every
    5th period at the given positioning aggressiveness."""
    from repro.crypto.onion import permanent_id_from_onion

    offset = (permanent_id_from_onion(TARGET)[0] * DAY) // 256
    rng = random.Random(seed)
    honest = []
    for i in range(HONEST):
        keypair = KeyPair.generate(rng)
        honest.append(
            ConsensusEntry(
                fingerprint=keypair.fingerprint,
                nickname=f"honest{i:03d}",
                ip=5000 + i,
                or_port=9001,
                bandwidth=500,
                flags=RelayFlags.RUNNING | RelayFlags.HSDIR,
            )
        )
    archive = ConsensusArchive()
    for period in range(PERIODS):
        period_start = (period + 900_00) * DAY - offset
        entries = list(honest)
        if tracker_ratio and period % 5 == 0:
            desc = descriptor_id(TARGET, period_start, 0)
            # Pin the positioning distance to exactly avg_gap / ratio so the
            # sweep controls observed aggressiveness (uniform grinding would
            # occasionally land much closer and blur the sweep levels).
            distance = max(1, int(RING_SIZE / HONEST / tracker_ratio))
            point = (int.from_bytes(desc, "big") + distance) % RING_SIZE
            key = KeyPair.with_forged_fingerprint(point.to_bytes(20, "big"))
            entries.append(
                ConsensusEntry(
                    fingerprint=key.fingerprint,
                    nickname="sneaky",
                    ip=7,
                    or_port=9001,
                    bandwidth=500,
                    flags=RelayFlags.RUNNING | RelayFlags.HSDIR,
                )
            )
        entries.sort(key=lambda e: e.fingerprint)
        archive.append(Consensus(valid_after=period_start, entries=tuple(entries)))
    start = 900_00 * DAY - offset
    return archive, (start, start + PERIODS * DAY)


def run_sweep():
    rows = []
    for ratio in (None, 20, 150, 2000, 20000):
        archive, (start, end) = build_archive(ratio)
        report = TrackingAnalyzer(archive).analyze(TARGET, start, end)
        tracker = report.servers.get((7, 9001))
        flags = report.flags_for(tracker) if tracker else []
        convicted = (7, 9001) in report.likely_trackers()
        honest_frequency_hits = sum(
            1 for s in report.servers_with_flag("frequency") if s != (7, 9001)
        )
        rows.append(
            (
                "honest-only" if ratio is None else f"ratio {ratio}",
                ",".join(sorted(flags)) or "-",
                "yes" if convicted else "no",
                honest_frequency_hits,
            )
        )
    return rows


def test_ablation_detection_rules(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(experiment="ablation-detection")
    table = format_rows(
        rows,
        headers=("attacker", "tracker flags", "convicted", "honest freq hits"),
    )
    for label, _flags, convicted, _hits in rows:
        expected = 0 if label in ("honest-only", "ratio 20") else 1
        report.add(f"convicted [{label}]", expected, 1 if convicted == "yes" else 0)
    save_report(report_dir, "ablation_detection", report.format() + "\n\n" + table)

    by_label = {label: (flags, convicted, hits) for label, flags, convicted, hits in rows}
    # No tracker, no conviction.
    assert by_label["honest-only"][1] == "no"
    # Sub-threshold positioning evades the ratio rule (stealthy tracker).
    assert by_label["ratio 20"][1] == "no"
    assert "fresh-fingerprint" in by_label["ratio 20"][0]  # but leaves traces
    # At and beyond ratio 150 the conjunction convicts.
    assert by_label["ratio 150"][1] == "yes"
    assert by_label["ratio 2000"][1] == "yes"
    assert by_label["ratio 20000"][1] == "yes"
    # The frequency rule alone fires on honest relays in every setting —
    # the reason the paper does not rely on it.
    assert all(hits > 0 for _, _, _, hits in rows)
