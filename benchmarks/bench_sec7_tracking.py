"""Bench: regenerate §VII (Silk Road tracking detection, 3-year history)."""

from conftest import save_report

from repro.experiments import run_sec7


def test_sec7_silkroad_tracking(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: run_sec7(seed=0, scale=1.0), rounds=1, iterations=1
    )
    save_report(report_dir, "sec7_tracking", result.report.format())

    benchmark.extra_info["periods_year3"] = result.yearly_reports[
        "year3"
    ].periods_analyzed

    # The paper's three-year narrative, verbatim.
    assert len(result.likely_by_year["year1"]) == 0
    assert "our-trackers" in result.detected_entities("year2")
    assert "may-episode" in result.detected_entities("year3")
    assert "aug-episode" in result.detected_entities("year3")
    assert len(result.takeovers) == 1
    for year in ("year1", "year2", "year3"):
        assert result.honest_false_positives(year) == 0

    # Ring growth matches the footnote (757 → 1,862).
    year1 = result.yearly_reports["year1"]
    year3 = result.yearly_reports["year3"]
    assert year1.mean_hsdir_count < 1_100
    assert year3.mean_hsdir_count > 1_400
