"""Bench: regenerate Fig 1 (open-ports distribution) + §III TLS findings."""

from conftest import record_phase_timings, save_report, save_span_report

from repro.experiments import run_fig1


def test_fig1_open_ports(benchmark, full_pipeline, report_dir):
    result = benchmark.pedantic(
        lambda: run_fig1(pipeline=full_pipeline), rounds=1, iterations=1
    )
    text = result.report.format() + "\n\n" + result.format_figure()
    save_report(report_dir, "fig1_ports", text)
    save_span_report(report_dir, "fig1_ports", full_pipeline.observer)
    record_phase_timings(benchmark, full_pipeline.observer)

    benchmark.extra_info["total_open_ports"] = result.distribution.total_open
    benchmark.extra_info["max_rel_error"] = round(result.report.max_error(), 4)

    # Shape assertions (who wins, roughly by how much).
    counts = result.distribution.counts
    assert counts["55080-Skynet"] > 3 * counts["80-http"]
    assert counts["80-http"] > 2.5 * counts["443-https"]
    assert result.report.max_error() < 0.25
