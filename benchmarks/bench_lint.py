"""Bench: whole-program lint wall-time over the full source tree.

Runs all thirteen rules (the three whole-program analyses included)
against ``src/repro`` and records the wall-clock plus the parse count.
The parse-count assertion is the "each file parsed exactly once"
guarantee as a measured property: the AST cache must hand every rule —
per-file and project-wide alike — the same parse.
"""

import pathlib

from conftest import save_report

from repro.devtools import run_lint
from repro.devtools.astcache import AstCache

REPRO_SRC = str(pathlib.Path(__file__).parent.parent / "src" / "repro")


def test_lint_whole_program(benchmark, report_dir):
    """Full REP001-REP013 sweep: one parse per file, zero findings."""

    def sweep():
        cache = AstCache()
        report = run_lint([REPRO_SRC], cache=cache)
        return report, cache

    (report, cache) = benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert cache.parses == report.files_scanned, "a file was parsed twice"
    assert report.findings == [], "lint must stay clean repo-wide"

    benchmark.extra_info["files_scanned"] = report.files_scanned
    benchmark.extra_info["parses"] = cache.parses
    wall = benchmark.stats.stats.mean
    save_report(
        report_dir,
        "lint",
        (
            f"lint: {report.files_scanned} files, {cache.parses} parses, "
            f"{len(report.findings)} findings, {wall:.3f}s wall"
        ),
    )
