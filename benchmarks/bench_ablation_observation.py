"""Ablation: the popularity observation floor.

EXPERIMENTS.md documents that our rotating attacker resolves fewer onions
than the paper's near-full-takeover vantage because services below a few
requests per 2 hours fall under the observation floor.  This ablation
quantifies the claim: sweeping the traffic volume (thinning) at fixed
coverage, the resolved-onion count should rise toward the planted number
of requested onions while per-service *rates* stay calibrated throughout.
"""

from conftest import save_report

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_rows
from repro.experiments import run_table2
from repro.population import generate_population

SCALE = 0.1


def run_sweep():
    rows = []
    for thinning in (0.25, 0.5, 1.0):
        population = generate_population(seed=5, scale=SCALE)
        result = run_table2(
            seed=5,
            population=population,
            sweep_hours=8,
            rotation_interval_hours=1,
            relays_per_ip=20,
            thinning=thinning,
        )
        planted_requested = len(population.tail_onions) + len(
            [
                label
                for label, _ in population.spec.named_rates
                if label in population.named_onions
            ]
        )
        goldnet_row = result.ranking.row_for(
            population.named_onions["goldnet-1"]
        )
        planted_rate = dict(population.spec.named_rates)["goldnet-1"]
        rows.append(
            (
                thinning,
                result.resolution.resolved_onion_count,
                planted_requested,
                goldnet_row.requests if goldnet_row else 0,
                planted_rate,
            )
        )
    return rows


def test_ablation_observation_floor(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(experiment="ablation-observation-floor")
    for thinning, resolved, planted, rate, planted_rate in rows:
        report.add(f"resolved onions @ thinning {thinning}", planted, resolved)
        report.add(f"goldnet-1 rate @ thinning {thinning}", planted_rate, rate)
    table = format_rows(
        rows,
        headers=(
            "thinning",
            "resolved onions",
            "requested (planted)",
            "goldnet-1 rate",
            "planted rate",
        ),
    )
    save_report(report_dir, "ablation_observation", report.format() + "\n\n" + table)

    resolved_counts = [resolved for _, resolved, _, _, _ in rows]
    # More traffic → more of the tail clears the observation floor.
    assert resolved_counts == sorted(resolved_counts)
    # Rates stay calibrated (within 40%) across the whole sweep: thinning
    # changes variance, not bias.
    for thinning, _, _, rate, planted_rate in rows:
        assert abs(rate - planted_rate) < 0.4 * planted_rate, (thinning, rate)
