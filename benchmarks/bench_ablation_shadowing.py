"""Ablation: harvest coverage vs fleet size and rotation budget.

Validates the §II design reasoning: coverage compounds across rotation
waves, so few IPs with deep shadow stacks beat many IPs without them — and
quantifies how close the measured sweep comes to the analytic
:func:`expected_capture_probability`.
"""

from conftest import save_report

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_rows
from repro.experiments import run_harvest
from repro.trawl import expected_capture_probability, naive_ip_requirement


def sweep_fleets():
    rows = []
    for ip_count, relays_per_ip in ((4, 8), (8, 8), (8, 24), (16, 24)):
        result = run_harvest(
            seed=3,
            scale=0.03,
            ip_count=ip_count,
            relays_per_ip=relays_per_ip,
            sweep_hours=10,
        )
        waves = min(10, relays_per_ip // 2)
        predicted = expected_capture_probability(
            2 * ip_count, result.hsdir_count, waves=waves
        )
        rows.append(
            (
                f"{ip_count}x{relays_per_ip}",
                round(result.harvest_fraction, 3),
                round(predicted, 3),
                result.naive_ips_needed,
            )
        )
    return rows


def test_ablation_shadowing(benchmark, report_dir):
    rows = benchmark.pedantic(sweep_fleets, rounds=1, iterations=1)

    report = ExperimentReport(experiment="ablation-shadowing")
    for label, measured, predicted, naive in rows:
        report.add(f"coverage fleet {label}", predicted, measured)
    report.note("predicted = analytic capture probability; measured = sweep")
    table = format_rows(
        rows, headers=("fleet (ips x relays)", "coverage", "predicted", "naive IPs")
    )
    save_report(report_dir, "ablation_shadowing", report.format() + "\n\n" + table)

    coverages = [measured for _, measured, _, _ in rows]
    # Coverage increases with fleet size and saturates near 1.
    assert coverages == sorted(coverages)
    assert coverages[-1] > 0.95
    # Analytic model within 15 points of the sweep everywhere.
    for _, measured, predicted, _ in rows:
        assert abs(measured - predicted) < 0.15
    # The footnote-3 claim at the real 2013 ring size.
    assert naive_ip_requirement(1200) == 300
