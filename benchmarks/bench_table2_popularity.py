"""Bench: regenerate Table II (popularity ranking) + §V aggregates.

The heaviest experiment: full trawl + interleaved client traffic.  Traffic
is Poisson-thinned 2× (un-thinned in reporting — see run_table2) to keep
the bench to a few minutes; rates, rankings and fractions are unaffected.
"""

from conftest import save_report

from repro.experiments import run_table2


def test_table2_popularity(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: run_table2(
            seed=0,
            scale=1.0,
            sweep_hours=12,
            rotation_interval_hours=1,
            relays_per_ip=26,
            thinning=0.5,
        ),
        rounds=1,
        iterations=1,
    )
    text = result.report.format() + "\n\n" + result.ranking.format_table(limit=35)
    save_report(report_dir, "table2_popularity", text)

    benchmark.extra_info["resolved_onions"] = result.resolution.resolved_onion_count
    benchmark.extra_info["unique_ids"] = result.unique_ids_observed

    ranking = result.ranking

    # The head: Goldnet fronts dominate, on two physical machines.
    top5_descriptions = {row.description for row in ranking.top(5)}
    assert top5_descriptions == {"Goldnet"}
    assert len({f.server_group for f in result.goldnet_findings}) == 2
    assert len(result.goldnet_findings) >= 8  # 9 fronts, scan noise allowed

    # Skynet cluster sits between ranks ~8 and ~30 (paper: 10–28).
    skynet_ranks = [row.rank for row in ranking.rows_matching("Skynet")]
    assert skynet_ranks and min(skynet_ranks) >= 6 and max(skynet_ranks) <= 50

    # Spot ranks: Silk Road ~18, BMR ~62, DuckDuckGo ~157, TorHost ~547.
    # Mid-table rank estimates carry high variance: a service's rate is
    # estimated from the few hours its descriptor IDs were covered.
    assert 10 <= result.rank_of_label("silkroad") <= 30
    assert 30 <= result.rank_of_label("blackmarket-reloaded") <= 180
    assert 90 <= result.rank_of_label("duckduckgo") <= 320
    assert result.rank_of_label("torhost-main") >= 300

    # §V aggregates: phantom-dominated traffic, partial resolution.
    assert result.resolution.phantom_request_fraction > 0.7
    resolution = result.resolution
    assert resolution.resolved_ids < resolution.total_unique_ids / 2
    # The paper resolved 3,140 onions with essentially full ring coverage;
    # our rotating attacker holds ~1/3 of a replica's slots for ~45% of the
    # sweep, so services below ~3 requests/2h fall under the observation
    # floor (documented in EXPERIMENTS.md).
    assert 1_600 <= resolution.resolved_onion_count <= 4_200
