"""Bench: regenerate Table I (HTTP/HTTPS-connectable destinations)."""

from conftest import record_phase_timings, save_report

from repro.experiments import run_table1


def test_table1_http_access(benchmark, full_pipeline, report_dir):
    result = benchmark.pedantic(
        lambda: run_table1(pipeline=full_pipeline), rounds=1, iterations=1
    )
    text = result.report.format() + "\n\n" + result.format_table()
    save_report(report_dir, "table1_http", text)
    record_phase_timings(benchmark, full_pipeline.observer)

    benchmark.extra_info["connected"] = result.connected
    rows = dict(result.rows)
    # Funnel + ordering shape.
    assert result.tried > result.open_at_crawl > result.connected
    assert rows["80"] > rows["443"] > rows["8080"]
    assert rows["22"] > rows["Other"] / 2
    # Every big cell within 15% of the paper at full scale.
    for row in result.report.rows:
        if row.paper and row.paper > 100:
            assert row.error < 0.15, f"{row.label}: {row.measured} vs {row.paper}"
