"""Ablation: deanonymisation compounds across guard rotations.

§II.B's operator attack (and §VI's client variant) are gated by guard
selection: per guard *generation*, a victim is capturable only if an
attacker relay landed in its 3-guard set (p = 1-(1-share)³).  Guards rotate
every 30–60 days, re-rolling that draw — so the captured fraction over time
follows 1-(1-p)^generations.  This ablation measures the compounding
directly on the publish path.
"""

from conftest import save_report

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_rows
from repro.crypto.keys import KeyPair
from repro.hs.service import HiddenService
from repro.sim.clock import DAY, parse_date
from repro.sim.rng import derive_rng
from repro.tracking import ServiceDeanonAttack, deploy_attacker_guards
from repro.worldbuild import HonestNetworkSpec, build_honest_network

GENERATIONS = 6
TARGET_SERVICES = 120


def run_rotation_study():
    seed = 4
    start = parse_date("2013-01-01")
    network, pool = build_honest_network(
        seed, start, HonestNetworkSpec(relay_count=500), rng_label="rotation-net"
    )
    guards = deploy_attacker_guards(
        network, 16, derive_rng(seed, "rot", "guards"), bandwidth=9000,
        address_pool=pool,
    )
    network.rebuild_consensus(start)

    service_rng = derive_rng(seed, "rot", "services")
    services = [
        HiddenService(
            keypair=KeyPair.generate(service_rng),
            online_from=0,
            operator_ip=0x70000000 + index,
        )
        for index in range(TARGET_SERVICES)
    ]
    # The attacker watches *every* directory (it swept the ring): the gate
    # under study is purely the guard race.
    attack = ServiceDeanonAttack(
        hsdir_relay_ids={
            relay.relay_id for relay in network.authority.monitored_relays
        },
        guard_fingerprints=frozenset(relay.fingerprint for relay in guards),
        target_onions={service.onion for service in services},
        rng=derive_rng(seed, "rot", "sig"),
    )
    attack.attach(network)

    from repro.relay.flags import RelayFlags

    entries = network.consensus.with_flag(RelayFlags.GUARD)
    share = sum(
        e.bandwidth for e in entries if e.fingerprint in attack.guard_fingerprints
    ) / sum(e.bandwidth for e in entries)
    per_generation = 1 - (1 - share) ** 3

    rows = []
    for generation in range(1, GENERATIONS + 1):
        # Everyone's guards expire; publishes happen daily for a week.
        for service in services:
            service._guards = None
        network.clock.advance_by(61 * DAY)
        network.rebuild_consensus()
        for day in range(7):
            when = network.clock.now + day * DAY
            network.rebuild_consensus(when)
            for service in services:
                network.publish_service(service, when)
        captured = len(attack.deanonymized_services)
        predicted = 1 - (1 - per_generation) ** generation
        rows.append(
            (
                generation,
                captured,
                round(captured / TARGET_SERVICES, 3),
                round(predicted, 3),
            )
        )
    return share, rows


def test_ablation_guard_rotation(benchmark, report_dir):
    share, rows = benchmark.pedantic(run_rotation_study, rounds=1, iterations=1)

    report = ExperimentReport(experiment="ablation-guard-rotation")
    for generation, captured, fraction, predicted in rows:
        report.add(f"captured fraction after {generation} rotations", predicted, fraction)
    report.note(f"attacker guard-bandwidth share: {share:.3f}")
    table = format_rows(
        rows,
        headers=("guard generations", "services captured", "fraction", "predicted"),
    )
    save_report(
        report_dir, "ablation_guard_rotation", report.format() + "\n\n" + table
    )

    fractions = [fraction for _, _, fraction, _ in rows]
    # Monotone compounding, agreeing with the analytic curve.
    assert fractions == sorted(fractions)
    assert fractions[-1] > fractions[0]
    for _, _, fraction, predicted in rows:
        assert abs(fraction - predicted) < 0.15
