"""Bench: regenerate Fig 2 (topic distribution) + §IV language stats."""

from conftest import record_phase_timings, save_report, save_span_report

from repro.analysis.stats import l1_distance, share_table
from repro.experiments import run_fig2
from repro.population.spec import TOPIC_SHARES


def test_fig2_topic_distribution(benchmark, full_pipeline, report_dir):
    result = benchmark.pedantic(
        lambda: run_fig2(pipeline=full_pipeline), rounds=1, iterations=1
    )
    text = result.report.format() + "\n\n" + result.format_figure()
    save_report(report_dir, "fig2_topics", text)
    # fig2 runs last of the shared pipeline's stages: its span report shows
    # the whole campaign (scan, certificates, crawl, classify).
    save_span_report(report_dir, "fig2_topics", full_pipeline.observer)
    record_phase_timings(benchmark, full_pipeline.observer)

    outcome = result.outcome
    benchmark.extra_info["english_fraction"] = round(outcome.english_fraction, 4)
    benchmark.extra_info["languages"] = len(outcome.language_counts)

    # Language shape: 84% English, 17 languages, others < 3% each.
    assert 0.80 <= outcome.english_fraction <= 0.89
    assert len(outcome.language_counts) == 17
    shares = share_table(outcome.language_counts)
    for language, share in shares.items():
        if language != "en":
            assert share < 0.03

    # Topic shape: within a few percent of Fig 2 overall; top-2 categories
    # are Adult and Drugs; the illegal cluster ≈ 44%.
    measured = share_table(outcome.topic_counts)
    planted = {topic: share / 100 for topic, share in TOPIC_SHARES.items()}
    assert l1_distance(measured, planted) < 0.08
    ordered = sorted(measured, key=measured.get, reverse=True)
    assert set(ordered[:2]) == {"adult", "drugs"}
    illegal = sum(
        measured.get(t, 0) for t in ("adult", "drugs", "counterfeit", "weapon")
    )
    assert 0.38 <= illegal <= 0.50  # paper: 44%
