"""Bench: §VI application — Silk Road seller identification by pattern."""

from conftest import save_report

from repro.experiments import run_sec6


def test_sec6_seller_identification(benchmark, report_dir):
    result = benchmark.pedantic(
        lambda: run_sec6(
            seed=0,
            honest_relays=800,
            attacker_guards=18,
            buyer_count=1500,
            seller_count=60,
            observation_days=7,
        ),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "sec6_sellers", result.report.format())

    ident = result.identification
    benchmark.extra_info["sellers_identified"] = len(ident.identified_sellers)
    benchmark.extra_info["precision"] = round(ident.precision, 3)

    # The paper's claim: even a small capture footprint nails sellers.
    assert ident.true_positives >= 5
    assert ident.precision == 1.0  # buyers structurally cannot look periodic
    assert ident.captured_seller_recall >= 0.5
