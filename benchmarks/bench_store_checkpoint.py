"""Bench: checkpoint/resume overhead of the artifact store.

Measures the same small campaign three ways — uncached, cold through a
store (pays serialisation + hashing), and warm through a store (replays
every stage) — and asserts the warm run recomputed nothing and produced
the identical classification.  The interesting numbers are the cold
overhead (store tax) and the warm speedup (what resume buys).
"""

import pathlib

from repro.experiments.pipeline import MeasurementPipeline
from repro.store import ArtifactStore

SEED = 3
SCALE = 0.05


def _campaign(store=None):
    pipeline = MeasurementPipeline(seed=SEED, scale=SCALE, store=store)
    pipeline.certificates()
    return pipeline.classify()


def test_store_cold(benchmark, tmp_path_factory):
    """Cold run through a fresh store: compute + serialise + hash."""
    root = tmp_path_factory.mktemp("store-cold")

    def cold():
        return _campaign(ArtifactStore(root / "s"))

    outcome = benchmark.pedantic(cold, rounds=1, iterations=1)
    benchmark.extra_info["classified_pages"] = outcome.classified_pages
    assert outcome.classified_pages > 0


def test_store_warm(benchmark, tmp_path_factory):
    """Warm run: every stage replays from the store."""
    root: pathlib.Path = tmp_path_factory.mktemp("store-warm") / "s"
    baseline = _campaign(ArtifactStore(root))

    warm_store = ArtifactStore(root)
    outcome = benchmark.pedantic(
        lambda: _campaign(warm_store), rounds=1, iterations=1
    )

    summary = warm_store.ledger.run_summaries()[-1]
    benchmark.extra_info["warm_hits"] = summary["hits"]
    assert summary["misses"] == 0, "warm run recomputed a stage"
    assert outcome.topic_counts == baseline.topic_counts
    assert outcome.language_counts == baseline.language_counts
