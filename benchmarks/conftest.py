"""Benchmark fixtures.

The benches regenerate every table/figure at the paper's full scale; the
scan→crawl→classify campaign is shared (Fig 1, Table I and Fig 2 are stages
of one pipeline, exactly as in the paper).  Each bench writes its
paper-vs-measured report to ``benchmarks/reports/`` so EXPERIMENTS.md can be
refreshed from artifacts.

Set ``REPRO_WORKERS=N`` (or use the ``workers`` fixture) to fan the
parallel-safe stages out over a process pool; every report stays
byte-identical to the serial run — only the wall-clock moves.  Set
``REPRO_STORE=DIR`` to checkpoint the campaign's stages through
:mod:`repro.store`: a warm bench run replays cached stages instead of
recomputing them (reports stay byte-identical either way).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.reporting import (  # noqa: F401  (re-exported to benches)
    record_phase_timings,
    save_report,
    save_span_report,
)
from repro.experiments.pipeline import MeasurementPipeline
from repro.parallel import resolve_workers
from repro.store import open_store

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def workers():
    """Worker count under bench: $REPRO_WORKERS, else serial."""
    return resolve_workers(None)


@pytest.fixture(scope="session")
def store():
    """Artifact store under bench: $REPRO_STORE, else off."""
    return open_store(None)


@pytest.fixture(scope="session")
def full_pipeline(workers, store):
    """Full-scale (39,824-onion) scan/crawl/classify campaign."""
    return MeasurementPipeline(seed=0, scale=1.0, workers=workers, store=store)


@pytest.fixture(scope="session")
def report_dir():
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR
