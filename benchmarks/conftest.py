"""Benchmark fixtures.

The benches regenerate every table/figure at the paper's full scale; the
scan→crawl→classify campaign is shared (Fig 1, Table I and Fig 2 are stages
of one pipeline, exactly as in the paper).  Each bench writes its
paper-vs-measured report to ``benchmarks/reports/`` so EXPERIMENTS.md can be
refreshed from artifacts.

Set ``REPRO_WORKERS=N`` (or use the ``workers`` fixture) to fan the
parallel-safe stages out over a process pool; every report stays
byte-identical to the serial run — only the wall-clock moves.  Set
``REPRO_STORE=DIR`` to checkpoint the campaign's stages through
:mod:`repro.store`: a warm bench run replays cached stages instead of
recomputing them (reports stay byte-identical either way).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.pipeline import MeasurementPipeline
from repro.parallel import resolve_workers
from repro.store import open_store

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def workers():
    """Worker count under bench: $REPRO_WORKERS, else serial."""
    return resolve_workers(None)


@pytest.fixture(scope="session")
def store():
    """Artifact store under bench: $REPRO_STORE, else off."""
    return open_store(None)


@pytest.fixture(scope="session")
def full_pipeline(workers, store):
    """Full-scale (39,824-onion) scan/crawl/classify campaign."""
    return MeasurementPipeline(seed=0, scale=1.0, workers=workers, store=store)


@pytest.fixture(scope="session")
def report_dir():
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def save_report(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a report artifact and echo it for -s runs."""
    (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def save_span_report(report_dir: pathlib.Path, name: str, observer) -> None:
    """Persist the pipeline's per-phase span-timing tree (simulated time).

    The tree shows where the campaign's simulated seconds went (the scan's
    eight days, the crawl's connect latencies) — the deterministic
    complement to the benchmark's wall-clock numbers.
    """
    from repro.obs import render_spans

    text = render_spans(observer)
    (report_dir / f"{name}_spans.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def record_phase_timings(benchmark, observer) -> None:
    """Attach each top-level span's simulated duration as extra_info."""
    for span in observer.spans:
        benchmark.extra_info[f"sim_seconds[{span.name}]"] = span.duration
