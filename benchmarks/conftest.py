"""Benchmark fixtures.

The benches regenerate every table/figure at the paper's full scale; the
scan→crawl→classify campaign is shared (Fig 1, Table I and Fig 2 are stages
of one pipeline, exactly as in the paper).  Each bench writes its
paper-vs-measured report to ``benchmarks/reports/`` so EXPERIMENTS.md can be
refreshed from artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.pipeline import MeasurementPipeline

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def full_pipeline():
    """Full-scale (39,824-onion) scan/crawl/classify campaign."""
    return MeasurementPipeline(seed=0, scale=1.0)


@pytest.fixture(scope="session")
def report_dir():
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def save_report(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a report artifact and echo it for -s runs."""
    (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
