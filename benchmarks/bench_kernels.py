"""Bench: the four hot-path kernels, scalar reference vs batch, one policy.

Each cell runs through :func:`repro.bench.run_workload` — the same
warmup/repeat loop the ``repro bench`` CLI and the committed
``BENCH_*.json`` trajectories use — so a number measured here is directly
comparable to a trajectory point.  The report artifact is the text *view*
of an in-memory trajectory: the JSON document shape is the source of
truth, the table is rendered from it.

Every cell also asserts the bench plane's core invariant inline: the batch
kernel's checksum equals the scalar reference's, so a speedup can never be
bought with a silently different answer.
"""

import pytest

from conftest import save_report

from repro.bench import (
    HOT_PATH_WORKLOADS,
    Trajectory,
    render_trajectory_text,
    run_workload,
)

TIER = "small"


@pytest.mark.parametrize("name", HOT_PATH_WORKLOADS)
def test_kernel_speedup(benchmark, report_dir, name):
    scalar = run_workload(name, TIER, "scalar", repeats=3, warmup=1, label="bench")
    batch = benchmark.pedantic(
        lambda: run_workload(name, TIER, "batch", repeats=3, warmup=1, label="bench"),
        rounds=1,
        iterations=1,
    )

    # The equivalence oracle, enforced at bench time too: identical bytes
    # reduced to identical checksums, or the perf number is meaningless.
    assert batch.checksum == scalar.checksum
    assert batch.items == scalar.items

    speedup = (
        scalar.wall.min_seconds / batch.wall.min_seconds
        if batch.wall.min_seconds
        else 0.0
    )
    benchmark.extra_info["scalar_min_seconds"] = round(scalar.wall.min_seconds, 4)
    benchmark.extra_info["batch_min_seconds"] = round(batch.wall.min_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    trajectory = Trajectory(name=name, points=[scalar, batch])
    text = "\n".join(
        [
            render_trajectory_text(trajectory),
            "",
            f"speedup (scalar/batch, min over repeats)  {speedup:.2f}x",
            "checksums kernel-identical                yes (asserted)",
        ]
    )
    save_report(report_dir, f"kernel_{name}", text)
