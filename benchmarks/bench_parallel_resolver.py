"""Bench: DescriptorResolver index build, serial vs deterministic pool.

The index build is the pipeline's most parallel-friendly hot spot: pure
per-onion SHA-1 batches fanned out through ``repro.parallel.pmap``.  The
bench times the identical build serially and on a process pool, asserts
the two indexes are byte-identical (the whole point of the executor), and
records both wall times plus the speedup factor in the report artifact.
On a single-core host the pool honestly reports ~1x or below — the gain
shows up on multi-core CI runners, the equivalence never changes.
"""

import time

from conftest import save_report

from repro.crypto.onion import onion_address_from_key
from repro.popularity import DescriptorResolver
from repro.sim.clock import parse_date
from repro.sim.rng import derive_rng

WINDOW_START = parse_date("2013-01-28")
WINDOW_END = parse_date("2013-02-08")
ONION_COUNT = 12_000


def _onions():
    rng = derive_rng(0, "bench", "parallel-resolver")
    return [onion_address_from_key(rng.randbytes(140)) for _ in range(ONION_COUNT)]


def test_parallel_resolver_index_build(benchmark, report_dir, workers):
    onions = _onions()
    pool_workers = max(2, workers)

    started = time.perf_counter()
    serial = DescriptorResolver(onions, WINDOW_START, WINDOW_END, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: DescriptorResolver(
            onions, WINDOW_START, WINDOW_END, workers=pool_workers
        ),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = time.perf_counter() - started

    # The executor's contract: the pool changes throughput, never output.
    assert parallel._index == serial._index
    assert parallel._validity == serial._validity
    assert parallel.collision_count == serial.collision_count == 0

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 3)
    benchmark.extra_info["workers"] = pool_workers
    benchmark.extra_info["speedup"] = round(speedup, 2)

    text = "\n".join(
        [
            "== parallel-resolver index build ==",
            f"onions indexed            {ONION_COUNT}",
            f"index entries             {serial.index_size}",
            f"serial wall time          {serial_seconds:.3f}s (workers=1)",
            f"parallel wall time        {parallel_seconds:.3f}s "
            f"(workers={pool_workers})",
            f"speedup                   {speedup:.2f}x",
            "outputs byte-identical    yes (asserted)",
        ]
    )
    save_report(report_dir, "parallel_resolver", text)
